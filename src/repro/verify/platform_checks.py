"""Platform-config checks (``V7xx``).

The pure-config half of the family lives on
:meth:`repro.platform.PlatformConfig.issues` — the platform package is
a leaf and cannot import the verifier, so it reports plain ``(code,
loc, message)`` tuples and this pass re-emits them as diagnostics.  The
cross-layer check V703 lives here because it needs the patch library:
it rebinds :class:`~repro.core.fusion.FusionTiming` to the config's
fabric and asks whether the worst fused pair at the hop limit still
fits the clock — a config whose fabric delays and ``max_fusion_hops``
promise stitchings the timing rule would then reject is inconsistent.
"""

from repro.core.fusion import FusionTiming
from repro.core.patches import PATCH_TYPES
from repro.verify.diagnostics import Report, Severity, register_rule

register_rule("V700", Severity.ERROR,
              "SPM window overlaps the code window", "platform")
register_rule("V701", Severity.ERROR,
              "inter-patch link width disagrees with the NoC flit",
              "platform")
register_rule("V702", Severity.ERROR,
              "cache geometry is not realizable", "platform")
register_rule("V703", Severity.ERROR,
              "fused path at the hop limit cannot fit the clock",
              "platform")
register_rule("V704", Severity.ERROR,
              "non-physical parameter value", "platform")
register_rule("V705", Severity.ERROR,
              "address-map value is not word-aligned", "platform")
register_rule("V706", Severity.ERROR,
              "unknown preset, group or field", "platform")


def check_platform(config, report=None):
    """Verify a :class:`~repro.platform.PlatformConfig` end to end.

    Emits the config's own consistency findings (V700/V701/V702/V704/
    V705) plus the cross-layer timing check V703.
    """
    report = report if report is not None else Report(config.name)
    for code, loc, message in config.issues():
        report.emit(code, loc, message)
    _check_fusion_closure(config, report)
    return report


def _check_fusion_closure(config, report):
    """V703: every patch pair must be stitchable at the hop limit."""
    fabric = config.fabric
    if fabric.max_fusion_hops < 1 or fabric.clock_ns <= 0:
        return  # V704 already covers the non-physical cases
    timing = FusionTiming.configured(fabric)
    for name_a, ptype_a in PATCH_TYPES.items():
        for name_b, ptype_b in PATCH_TYPES.items():
            delay = timing.fused_delay(ptype_a, ptype_b,
                                       fabric.max_fusion_hops)
            if not timing.fits_single_cycle(delay):
                report.emit(
                    "V703", f"{config.name}.fabric",
                    f"{{{name_a}, {name_b}}} fused "
                    f"{fabric.max_fusion_hops} hops apart needs "
                    f"{delay:.2f} ns but the clock is "
                    f"{fabric.clock_ns:.2f} ns; lower max_fusion_hops "
                    f"or slow the clock",
                )
