"""High-level verification entry points (and the CLI's backend).

``verify_kernel`` / ``verify_app`` / ``verify_source`` each return a
:class:`repro.verify.diagnostics.Report`; nothing is simulated beyond
what compilation itself measures — every rule is a static check over
the produced artifacts.
"""

from repro.verify.dataflow_checks import check_dataflow
from repro.verify.diagnostics import (
    Report,
    Severity,
    VerificationError,
    register_rule,
)
from repro.verify.ise_checks import check_ises
from repro.verify.mpi_checks import check_app_channels
from repro.verify.plan_checks import check_plan
from repro.verify.program_lint import lint_program

register_rule("V100", Severity.ERROR, "program does not assemble", "program-lint")
register_rule("V200", Severity.ERROR, "kernel does not compile", "ise-checks")


def verify_source(source, name="program", allowed_live_in=(), deep=False,
                  report=None):
    """Assemble ``source`` text and lint the resulting program.

    With ``deep`` the abstract interpreter runs too (the V800 family).
    """
    from repro.isa.assembler import AssemblerError, assemble

    report = report if report is not None else Report(name)
    try:
        program = assemble(source, name=name)
    except AssemblerError as exc:
        loc = f"{name}:{exc.lineno}" if exc.lineno is not None else name
        message = exc.bare_message
        if exc.line:
            message += f" (`{exc.line.strip()}`)"
        report.emit("V100", loc, message)
        return report
    lint_program(program, allowed_live_in=allowed_live_in, report=report)
    if deep:
        check_dataflow(
            program, allowed_live_in=allowed_live_in, report=report
        )
    return report


def verify_kernel(kernel, options=None, compile_options=True, deep=False,
                  report=None):
    """Lint a kernel body and statically check its compiled versions.

    ``kernel`` is a :class:`repro.workloads.base.Kernel` (resolve names
    with :func:`repro.workloads.make_kernel` first).  With
    ``compile_options`` every patch option's artifact is compiled
    (through the shared measurement cache) and run through the ISE
    checks; otherwise only the program lint runs.  With ``deep`` the
    abstract interpreter additionally proves the V800 family over the
    body and every compiled artifact.
    """
    report = report if report is not None else Report(kernel.name)
    lint_program(
        kernel.program,
        kernel_conventions=True,
        exit_live=kernel.live_out_regs,
        report=report,
    )
    if deep:
        check_dataflow(
            kernel.program, exit_live=kernel.live_out_regs, report=report
        )
    if not compile_options:
        return report

    from repro.compiler.driver import MiscompileError
    from repro.sim.baselines import compile_kernel_options

    try:
        _, compiled = compile_kernel_options(kernel, options=options)
    except (MiscompileError, RuntimeError, ValueError) as exc:
        report.emit("V200", kernel.name, f"compilation failed: {exc}")
        return report
    for option_name, artifact in sorted(compiled.items()):
        check_ises(
            artifact.program,
            cfg_table=artifact.cfg_table,
            mappings=artifact.mappings,
            original_program=kernel.program,
            report=report,
        )
        if deep:
            check_dataflow(
                artifact.program,
                cfg_table=artifact.cfg_table,
                exit_live=kernel.live_out_regs,
                report=report,
            )
    return report


def verify_compiled(compiled, deep=False, report=None):
    """ISE checks for one already-compiled :class:`CompiledKernel`."""
    report = report if report is not None else Report(
        f"{compiled.kernel.name}@{compiled.option.name}"
    )
    check_ises(
        compiled.program,
        cfg_table=compiled.cfg_table,
        mappings=compiled.mappings,
        original_program=compiled.kernel.program,
        report=report,
    )
    if deep:
        check_dataflow(
            compiled.program,
            cfg_table=compiled.cfg_table,
            exit_live=compiled.kernel.live_out_regs,
            report=report,
        )
    return report


def verify_plan(plan, placement, stage_kernels=None, stage_compiled=None,
                report=None):
    """Stitch-plan checks (see :mod:`repro.verify.plan_checks`)."""
    return check_plan(
        plan, placement,
        stage_kernels=stage_kernels,
        stage_compiled=stage_compiled,
        report=report,
    )


def verify_app(app, architecture=None, placement=None, deep=False,
               report=None):
    """Verify a pipeline application end to end.

    Lints every stage kernel, checks the channel graph for deadlock,
    compiles the per-stage cycle tables (cached) and proves the chosen
    architecture's stitch plan against the network/memory rules.  With
    ``deep`` the abstract interpreter also covers every distinct stage
    body and the per-stage compiled artifacts.
    """
    from repro.core.stitching import BASELINE
    from repro.sim.baselines import ARCH_STITCH, AppEvaluator

    architecture = architecture if architecture is not None else ARCH_STITCH
    report = report if report is not None else Report(app.name)

    linted = set()
    for stage in app.stages:
        key = type(stage.kernel).__name__
        if key in linted:
            continue  # structurally identical bodies lint identically
        linted.add(key)
        lint_program(
            stage.kernel.program,
            kernel_conventions=True,
            exit_live=stage.kernel.live_out_regs,
            report=report,
        )
        if deep:
            check_dataflow(
                stage.kernel.program,
                exit_live=stage.kernel.live_out_regs,
                report=report,
            )

    check_app_channels(app, report=report)

    evaluator = AppEvaluator(app, placement=placement)
    plan = evaluator.plan(architecture)
    compiled = evaluator.compiled_programs()
    stage_kernels = {stage.id: stage.kernel for stage in app.stages}
    stage_compiled = {}
    for sid, assignment in plan.assignments.items():
        if assignment.option == BASELINE:
            continue
        stage_compiled[sid] = compiled[sid].get(assignment.option)
    check_plan(
        plan, evaluator.placement,
        stage_kernels=stage_kernels,
        stage_compiled=stage_compiled,
        report=report,
    )
    for sid, artifact in sorted(stage_compiled.items()):
        if artifact is None:
            continue
        check_ises(
            artifact.program,
            cfg_table=artifact.cfg_table,
            mappings=artifact.mappings,
            original_program=artifact.kernel.program,
            report=report,
        )
        if deep:
            check_dataflow(
                artifact.program,
                cfg_table=artifact.cfg_table,
                exit_live=artifact.kernel.live_out_regs,
                report=report,
            )
    return report


def require_clean(report, strict=False):
    """Raise :class:`VerificationError` unless ``report`` passes."""
    if not report.ok(strict=strict):
        raise VerificationError(report)
    return report
