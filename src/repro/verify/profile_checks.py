"""Profiler/time-series consistency checks (``V9xx``).

The PC-attribution profiler and the interval sampler are *derived*
views of the same counters the V500 rules guard, so they get their own
reconciliation rules:

* **V900** — a tile's profiled cycle total (the sum of its retired-
  cycle PC histogram) disagrees with the simulator's attribution total
  for that tile.  Every simulated cycle lands on exactly one PC, so any
  drift means a timing-model change forgot to feed the histogram.
* **V901** — a time-series capture is malformed: non-positive sampling
  interval, non-monotonic interval indices within one series, or a
  sample whose ``[start, end)`` window does not match its index.

Like the V5xx pass these inspect dynamic artifacts (profiles, captures,
run roll-ups) but simulate nothing themselves.
"""

from repro.verify.diagnostics import Report, Severity, register_rule

register_rule(
    "V900", Severity.ERROR,
    "profiler cycle total disagrees with the simulator's attribution",
    "profile-checks",
)
register_rule(
    "V901", Severity.ERROR,
    "time-series sample intervals non-monotonic or overlapping",
    "profile-checks",
)


def check_profile(profile, total_cycles=None, report=None):
    """Reconcile one :class:`~repro.profile.CycleProfile` (V900).

    ``total_cycles`` overrides the profile's own recorded total — pass
    the tile's attribution total from a :class:`SystemStats` roll-up to
    cross-check two independently maintained counters.
    """
    loc = f"tile {profile.tile}"
    report = report if report is not None else Report(loc)
    expected = total_cycles if total_cycles is not None else profile.total_cycles
    profiled = profile.profiled_cycles()
    if profiled != expected:
        report.emit(
            "V900", loc,
            f"PC histogram holds {profiled} cycles but the simulator "
            f"attributed {expected} (drift {profiled - expected:+d}; did a "
            f"timing-model change bypass the profiler?)",
        )
    return report


def check_profile_run(profiles, results, report=None):
    """Reconcile every tile of an app profile against the run roll-up.

    ``profiles`` is the ``{tile: CycleProfile}`` map of
    :func:`repro.profile.profile_app_cycles`; ``results`` the
    :class:`~repro.sim.system.RunResults` (or a bare
    :class:`~repro.telemetry.SystemStats`) of the same run.
    """
    report = report if report is not None else Report("profile run")
    stats = getattr(results, "stats", results)
    for tile in sorted(profiles):
        attributed = stats.tiles.get(tile, {}).get("total")
        if attributed is None:
            report.emit(
                "V900", f"tile {tile}",
                "tile has a profile but no attribution in the run roll-up",
            )
            continue
        check_profile(profiles[tile], total_cycles=attributed, report=report)
    return report


def _check_series(samples, interval, loc, report):
    last_index = None
    for sample in samples:
        index = sample["index"]
        if last_index is not None and index <= last_index:
            report.emit(
                "V901", loc,
                f"interval index {index} follows {last_index} "
                f"(samples must be strictly increasing)",
            )
        last_index = index
        start, end = sample["start"], sample["end"]
        if start != index * interval or end != start + interval:
            report.emit(
                "V901", loc,
                f"sample {index} spans [{start}, {end}) but interval "
                f"{interval} puts it at [{index * interval}, "
                f"{(index + 1) * interval})",
            )


def check_timeseries(capture, report=None):
    """Validate a time-series capture's interval structure (V901).

    Accepts a live :class:`~repro.telemetry.TimeSeries` or its
    ``to_dict()`` payload (i.e. a loaded ``--timeseries`` JSON file).
    """
    payload = capture.to_dict() if hasattr(capture, "to_dict") else capture
    report = report if report is not None else Report("timeseries")
    interval = payload.get("interval")
    if not interval or interval <= 0:
        report.emit(
            "V901", "timeseries",
            f"non-positive sampling interval {interval!r}",
        )
        return report
    for tile, samples in sorted(payload.get("tiles", {}).items()):
        _check_series(samples, interval, f"tile {tile}", report)
    for link, samples in sorted(
        payload.get("noc", {}).get("links", {}).items()
    ):
        _check_series(samples, interval, f"link {link}", report)
    for chan, samples in sorted(
        payload.get("fabric", {}).get("channels", {}).items()
    ):
        _check_series(samples, interval, f"channel {chan}", report)
    return report
