"""Program lint: static checks over one assembled :class:`Program`.

Rules (``V1xx``):

* ``V101`` — a register is read somewhere but never written anywhere in
  the program (and is not architecturally zero): its value can only be
  whatever the harness left behind.
* ``V102`` — unreachable basic block (dead code; warning).
* ``V103`` — write to ``r0`` (architecturally ignored; warning).
* ``V104`` — branch/jump target is out of range or not a block leader.
* ``V105`` — kernel body touches ``r11``, the streaming wrapper's item
  counter (register convention of :mod:`repro.workloads.base`).
* ``V106`` — a ``send``/``recv`` operand register may be read before
  any definition in the iteration (cross-iteration register state in
  comm operands; the streaming convention requires re-initialization).

The pass reuses :mod:`repro.compiler.liveness` — the entry block's
``live_in`` set is exactly "maybe read before written on some path".
"""

from repro.compiler.liveness import liveness, successor_map
from repro.isa.instructions import Op, OpClass, op_class
from repro.verify.diagnostics import Report, Severity, register_rule

STREAM_COUNTER_REG = 11

register_rule("V101", Severity.ERROR,
              "read of a register never written by the program",
              "program-lint")
register_rule("V102", Severity.WARNING,
              "unreachable basic block", "program-lint")
register_rule("V103", Severity.WARNING,
              "write to the hardwired zero register r0", "program-lint")
register_rule("V104", Severity.ERROR,
              "branch/jump target out of range or not a block leader",
              "program-lint")
register_rule("V105", Severity.ERROR,
              "kernel body touches the r11 stream counter", "program-lint")
register_rule("V106", Severity.ERROR,
              "comm operand may carry cross-iteration register state",
              "program-lint")


def _loc(program, index):
    return f"{program.name}@{index}"


def lint_program(program, kernel_conventions=False, allowed_live_in=(),
                 exit_live=frozenset(), report=None):
    """Run the program lint; returns (or extends) a :class:`Report`.

    ``kernel_conventions`` enables the streaming-convention rules
    (``V105``/``V106``) that only apply to kernel bodies.
    ``allowed_live_in`` names registers legitimately live into the
    program (declared inputs of a raw ``.s`` harness).
    """
    report = report if report is not None else Report(program.name)
    if not len(program):
        return report
    blocks = program.basic_blocks()
    leaders = {block.start for block in blocks}

    written = set()
    read = set()
    for instr in program.instructions:
        written.update(reg for reg in instr.writes() if reg != 0)
        read.update(reg for reg in instr.reads() if reg != 0)

    # V104 first: broken targets would poison the CFG-based rules.
    target_ok = True
    for index, instr in enumerate(program.instructions):
        if instr.target is None or instr.op is Op.JR:
            continue
        if not 0 <= instr.target < len(program):
            report.emit(
                "V104", _loc(program, index),
                f"{instr.op.value} targets instruction {instr.target}, "
                f"outside the program [0, {len(program)})",
            )
            target_ok = False
        elif instr.target not in leaders:
            report.emit(
                "V104", _loc(program, index),
                f"{instr.op.value} targets non-leader index {instr.target}",
            )
            target_ok = False

    for index, instr in enumerate(program.instructions):
        writes = instr.writes()
        if instr.op is not Op.JAL and 0 in writes:
            report.emit(
                "V103", _loc(program, index),
                f"`{instr.text()}` writes r0; the result is discarded",
            )
        if kernel_conventions and STREAM_COUNTER_REG in (
            set(writes) | set(instr.reads())
        ):
            report.emit(
                "V105", _loc(program, index),
                f"`{instr.text()}` touches r{STREAM_COUNTER_REG}, reserved "
                "for the streaming wrapper's item counter",
            )

    if not target_ok:
        return report

    allowed = set(allowed_live_in)
    live_in, _ = liveness(program, exit_live=exit_live)
    entry_live = set(live_in.get(0, set()))

    for reg in sorted(entry_live - allowed):
        if reg not in written and reg in read:
            report.emit(
                "V101", _loc(program, 0),
                f"r{reg} is read but never written; it holds whatever the "
                "harness left in the register file",
            )

    # V102: forward reachability from the entry block.
    succs = successor_map(program, blocks)
    reachable = set()
    frontier = [0]
    while frontier:
        index = frontier.pop()
        if index in reachable:
            continue
        reachable.add(index)
        frontier.extend(succs[index])
    for block in blocks:
        if block.index not in reachable:
            report.emit(
                "V102", _loc(program, block.start),
                f"basic block #{block.index} "
                f"[{block.start}:{block.end}) is unreachable",
            )

    if kernel_conventions:
        _check_comm_operands(program, blocks, entry_live, allowed, report)
    return report


def _check_comm_operands(program, blocks, entry_live, allowed, report):
    """V106: comm operands must be defined within the iteration.

    A ``send``/``recv`` operand that is upward-exposed to the program
    entry reads state left over from a previous iteration once the body
    is wrapped into the streaming loop.
    """
    for block in blocks:
        defined = set()
        for offset, instr in enumerate(block.instructions):
            if op_class(instr.op) is OpClass.COMM:
                for reg in instr.reads():
                    if reg == 0 or reg in defined or reg in allowed:
                        continue
                    # Upward-exposed in this block; flag only when the
                    # exposure reaches the program entry (block 0's
                    # live_in), i.e. no path defines it first.
                    if block.index == 0 or reg in entry_live:
                        report.emit(
                            "V106",
                            _loc(program, block.start + offset),
                            f"`{instr.text()}` operand r{reg} is not "
                            "re-initialized in this iteration",
                        )
            defined.update(r for r in instr.writes() if r != 0)
