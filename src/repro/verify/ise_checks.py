"""ISE / ``cix`` checks: is a compiled artifact's acceleration legal?

Rules (``V2xx``):

* ``V201`` — a ``cix`` exceeds the register-file interface: at most 4
  input and 2 output registers (Section IV's port constraint).
* ``V202`` — a selected mapping replaces a non-convex DFG subgraph
  (an outside value path re-enters the candidate, so the atomic custom
  instruction cannot preserve program order).
* ``V203`` — a patch configuration does not round-trip through the
  19-bit control encoding of :mod:`repro.core.config` (or a fused
  pair's control word exceeds the 38 inter-patch control wires).
* ``V204`` — a constant-pool register is written more than once or
  read by a non-``cix`` instruction: pool registers must stay private
  to the prologue + custom instructions.
* ``V205`` — a ``cix`` names a config index outside the program's
  ``cfg_table``.
"""

from repro.core.config import CONTROL_BITS, PatchConfig
from repro.core.fusion import FusedConfig
from repro.isa.instructions import Op
from repro.verify.diagnostics import Report, Severity, register_rule

MAX_CIX_INPUTS = 4
MAX_CIX_OUTPUTS = 2
FUSED_CONTROL_BITS = 2 * CONTROL_BITS

register_rule("V201", Severity.ERROR,
              "cix exceeds the 4-input/2-output register-file ports",
              "ise-checks")
register_rule("V202", Severity.ERROR,
              "mapping replaces a non-convex DFG subgraph", "ise-checks")
register_rule("V203", Severity.ERROR,
              "patch config fails the 19-bit encoding round-trip",
              "ise-checks")
register_rule("V204", Severity.ERROR,
              "constant-pool register leaks into the surrounding program",
              "ise-checks")
register_rule("V205", Severity.ERROR,
              "cix config index outside the cfg table", "ise-checks")


def _loc(program, index):
    return f"{program.name}@{index}"


def _check_roundtrip(config, loc, report):
    if isinstance(config, FusedConfig):
        bits = config.control_bits()
        if not 0 <= bits < (1 << FUSED_CONTROL_BITS):
            report.emit(
                "V203", loc,
                f"fused control word needs more than the "
                f"{FUSED_CONTROL_BITS} inter-patch control wires",
            )
            return
        for half, cfg in (("A", config.cfg_a), ("B", config.cfg_b)):
            _check_roundtrip(cfg, f"{loc}/{half}", report)
        return
    if not getattr(config.ptype, "has_lmau", False):
        # Conventional SFU configs (LOCUS) live outside the 19-bit
        # Stitch encoding; there is nothing to round-trip.
        return
    try:
        bits = config.encode()
        if not 0 <= bits < (1 << CONTROL_BITS):
            raise ValueError(f"{bits:#x} does not fit {CONTROL_BITS} bits")
        decoded = PatchConfig.decode(config.ptype, bits)
    except (TypeError, ValueError) as exc:
        report.emit("V203", loc, f"config does not encode: {exc}")
        return
    if decoded != config:
        report.emit(
            "V203", loc,
            f"encode/decode mismatch: {config!r} -> {bits:#07x} -> "
            f"{decoded!r}",
        )


def check_ises(program, cfg_table=None, mappings=(), original_program=None,
               report=None):
    """Verify the custom instructions of a compiled program.

    ``cfg_table`` defaults to ``program.cfg_table``.  ``mappings`` (when
    available, e.g. from :class:`repro.compiler.driver.CompiledKernel`)
    enables the convexity rule.  ``original_program`` (the pre-rewrite
    kernel) identifies the constant-pool registers for ``V204``: every
    register the compiled binary touches that the original never did.
    """
    report = report if report is not None else Report(program.name)
    if cfg_table is None:
        cfg_table = getattr(program, "cfg_table", []) or []

    for index, instr in enumerate(program.instructions):
        if instr.op is not Op.CIX:
            continue
        ins = list(instr.ins or ())
        outs = list(instr.outs or ())
        if len(ins) > MAX_CIX_INPUTS or len(outs) > MAX_CIX_OUTPUTS:
            report.emit(
                "V201", _loc(program, index),
                f"`{instr.text()}` reads {len(ins)} and writes {len(outs)} "
                f"registers; the register file provides "
                f"{MAX_CIX_INPUTS} read / {MAX_CIX_OUTPUTS} write ports",
            )
        if instr.cfg is None or not 0 <= instr.cfg < len(cfg_table):
            report.emit(
                "V205", _loc(program, index),
                f"`{instr.text()}` names config {instr.cfg} but the cfg "
                f"table holds {len(cfg_table)} entries",
            )

    for cfg_id, config in enumerate(cfg_table):
        _check_roundtrip(config, f"{program.name}/cfg{cfg_id}", report)

    for mapping in mappings:
        candidate = mapping.candidate
        if len(candidate.inputs) > MAX_CIX_INPUTS:
            report.emit(
                "V201", f"{program.name}/{mapping!r}",
                f"candidate needs {len(candidate.inputs)} external inputs",
            )
        if len(candidate.outputs) > MAX_CIX_OUTPUTS:
            report.emit(
                "V201", f"{program.name}/{mapping!r}",
                f"candidate exposes {len(candidate.outputs)} outputs",
            )
        if not candidate.dfg.is_convex(candidate.node_ids):
            report.emit(
                "V202", f"{program.name}/{mapping!r}",
                "member set is not convex: an outside value path "
                "re-enters the candidate",
            )

    if original_program is not None:
        _check_pool_registers(program, original_program, report)
    return report


def _pool_registers(program, original_program):
    """Registers the rewrite claimed that the original never touched."""
    original_used = set()
    for instr in original_program.instructions:
        original_used.update(instr.reads())
        original_used.update(instr.writes())
    claimed = set()
    for instr in program.instructions:
        for reg in list(instr.reads()) + list(instr.writes()):
            if reg != 0 and reg not in original_used:
                claimed.add(reg)
    return claimed


def _check_pool_registers(program, original_program, report):
    for reg in sorted(_pool_registers(program, original_program)):
        writers = []
        bad_readers = []
        for index, instr in enumerate(program.instructions):
            if reg in instr.writes():
                writers.append(index)
            if reg in instr.reads() and instr.op is not Op.CIX:
                bad_readers.append(index)
        if len(writers) > 1 or any(
            program.instructions[w].op is not Op.MOVI for w in writers
        ):
            report.emit(
                "V204", _loc(program, writers[-1] if writers else 0),
                f"pool register r{reg} is written outside the single "
                "prologue movi",
            )
        for index in bad_readers:
            report.emit(
                "V204", _loc(program, index),
                f"pool register r{reg} is read by "
                f"`{program.instructions[index].text()}`, not a cix",
            )
