"""MPI deadlock detection: static checks over an app's channel graph.

The streaming wrapper makes every stage a blocking actor: it receives
all of its input regions, computes, then sends all of its output
regions, once per item (:meth:`repro.workloads.base.Kernel.
streaming_program`).  Under that discipline the static channel graph
decides liveness:

* ``V401`` — a directed cycle among stages deadlocks: every stage on
  the cycle blocks in ``recv`` waiting for its predecessor's first
  item, which is only sent after that predecessor's ``recv`` returns.
* ``V402`` — unmatched endpoint counts: the producer sends a different
  number of words than the consumer's ``recv`` expects, so one side
  eventually blocks forever (or reads a torn item).
* ``V403`` — a stage sends to itself: its blocking ``recv`` precedes
  the ``send`` that would satisfy it.

The pass is duck-typed over anything with ``stages`` (objects carrying
``id`` and ``kernel``) and ``channels`` (``src``/``src_region``/
``dst``/``dst_region``), so it works on :class:`repro.workloads.apps.
App` and on hand-built fixtures alike.
"""

from repro.verify.diagnostics import Report, Severity, register_rule

register_rule("V401", Severity.ERROR,
              "blocking send/recv cycle in the channel graph",
              "mpi-checks")
register_rule("V402", Severity.ERROR,
              "channel endpoints disagree on the words per item",
              "mpi-checks")
register_rule("V403", Severity.ERROR,
              "stage sends to itself over a blocking channel",
              "mpi-checks")


def _region_words(stage_by_id, stage_id, region_name):
    stage = stage_by_id.get(stage_id)
    if stage is None:
        return None
    try:
        return stage.kernel.get_region(region_name).nwords
    except KeyError:
        return None


def check_app_channels(app, report=None):
    """Verify the static channel graph of a pipeline application."""
    name = getattr(app, "name", "app")
    report = report if report is not None else Report(name)
    stage_by_id = {stage.id: stage for stage in app.stages}

    edges = {}
    for channel in app.channels:
        loc = (
            f"{name}/{channel.src}.{channel.src_region}->"
            f"{channel.dst}.{channel.dst_region}"
        )
        if channel.src == channel.dst:
            report.emit(
                "V403", loc,
                f"stage {channel.src} both sends and receives this "
                "channel; its recv blocks before the send can run",
            )
            continue
        edges.setdefault(channel.src, set()).add(channel.dst)
        src_words = _region_words(stage_by_id, channel.src, channel.src_region)
        dst_words = _region_words(stage_by_id, channel.dst, channel.dst_region)
        if src_words is not None and dst_words is not None \
                and src_words != dst_words:
            report.emit(
                "V402", loc,
                f"producer sends {src_words} words but consumer expects "
                f"{dst_words}",
            )

    for cycle in _find_cycles(edges):
        loop = " -> ".join(str(sid) for sid in cycle + [cycle[0]])
        report.emit(
            "V401", f"{name}/stages {loop}",
            "every stage on the cycle blocks in recv waiting for its "
            "predecessor's first item",
        )
    return report


def _find_cycles(edges):
    """Distinct elementary cycles (one witness per back edge) via DFS."""
    WHITE, GREY, BLACK = 0, 1, 2
    color = {}
    stack = []
    cycles = []
    seen = set()

    def visit(node):
        color[node] = GREY
        stack.append(node)
        for succ in sorted(edges.get(node, ())):
            state = color.get(succ, WHITE)
            if state == WHITE:
                visit(succ)
            elif state == GREY:
                cycle = tuple(stack[stack.index(succ):])
                witness = frozenset(cycle)
                if witness not in seen:
                    seen.add(witness)
                    cycles.append(list(cycle))
        stack.pop()
        color[node] = BLACK

    for node in sorted(edges):
        if color.get(node, WHITE) == WHITE:
            visit(node)
    return cycles
