"""Telemetry consistency checks (``V5xx``).

The core's cycle-attribution invariant — every simulated cycle lands in
exactly one bucket, so ``compute + memory_stall + icache_stall +
branch_bubble + comm_blocked == total`` — is the ground truth the
Fig. 13 execution-time breakdown is derived from.  These rules
cross-check it on *measured* runs, so any change to the core timing
model that forgets to attribute its new cycles is caught immediately
(instrumentation drift), instead of silently skewing every report
generated from the counters.

Unlike the V1xx–V4xx passes these rules look at dynamic artifacts (a
finished :class:`~repro.cpu.Core`, a :class:`~repro.sim.RunResults`),
but they are still pure checks: nothing is simulated here.
"""

from repro.telemetry.rollup import ATTRIBUTION_BUCKETS
from repro.verify.diagnostics import Report, Severity, register_rule

register_rule(
    "V500", Severity.ERROR,
    "cycle-attribution buckets do not sum to total cycles",
    "telemetry-checks",
)
register_rule(
    "V501", Severity.ERROR,
    "negative cycle-attribution bucket",
    "telemetry-checks",
)
register_rule(
    "V502", Severity.WARNING,
    "attribution exceeds retired-instruction issue slots",
    "telemetry-checks",
)


def check_cycle_attribution(attribution, loc="core", report=None):
    """Verify one attribution dict (``Core.attribution()`` shape)."""
    report = report if report is not None else Report(loc)
    total = attribution["total"]
    accounted = 0
    for bucket in ATTRIBUTION_BUCKETS:
        value = attribution[bucket]
        if value < 0:
            report.emit("V501", loc, f"bucket {bucket} is negative ({value})")
        accounted += value
    if accounted != total:
        report.emit(
            "V500", loc,
            f"buckets sum to {accounted} but the core ran {total} cycles "
            f"(drift {accounted - total:+d}; did a timing-model change "
            f"forget to attribute its cycles?)",
        )
    instructions = attribution.get("instructions")
    if instructions is not None and attribution["compute"] > instructions:
        report.emit(
            "V502", loc,
            f"compute bucket {attribution['compute']} exceeds the "
            f"{instructions} retired instructions (more issue slots than "
            f"instructions)",
        )
    return report


def check_core(core, report=None):
    """Verify a finished (or paused) core's attribution counters."""
    loc = f"core {core.core_id}"
    report = report if report is not None else Report(loc)
    attribution = core.attribution()
    attribution["instructions"] = core.instret
    return check_cycle_attribution(attribution, loc=loc, report=report)


def check_run(results, report=None):
    """Verify a co-simulation run.

    Accepts a :class:`repro.sim.RunResults` (checks every tile through
    its :class:`~repro.telemetry.SystemStats`) or a bare
    :class:`~repro.telemetry.SystemStats`.
    """
    stats = getattr(results, "stats", results)
    report = report if report is not None else Report("co-sim run")
    for tile in sorted(stats.tiles):
        check_cycle_attribution(
            stats.tiles[tile], loc=f"tile {tile}", report=report
        )
    return report
