"""Critical-path consistency checks (``V10xx``).

The causal execution graph (:mod:`repro.critpath`) claims two
invariants that, when they hold, make its attribution trustworthy:

* **V1000** — the critical path must *reconcile*: the sum of its edge
  weights equals the run's measured end-to-end cycles exactly.  The
  path is found by back-walking tight edges from the END node, and
  tight edges telescope node times — so any mismatch means the graph
  is missing a binding dependency (a hook was skipped, or a timing
  model changed without updating the recorder).
* **V1001** — causality must hold everywhere: no edge may have
  negative local slack (its effect timestamped before cause+weight
  allows), no edge may travel backward in simulated time, and the
  graph must be acyclic.

Like the V5xx/V9xx passes these inspect a *recorded* artifact; nothing
is simulated here, so a saved ``repro critpath --json`` capture can be
checked long after the run.
"""

from repro.verify.diagnostics import Report, Severity, register_rule

register_rule(
    "V1000", Severity.ERROR,
    "critical-path length disagrees with measured end-to-end cycles",
    "critpath-checks",
)
register_rule(
    "V1001", Severity.ERROR,
    "causal graph violates causality (negative slack / backward edge)",
    "critpath-checks",
)

_MAX_LISTED = 5


def check_critpath(graph, analysis=None, measured=None, report=None):
    """Verify one recorded graph (V1000 + V1001).

    ``measured`` is the simulator's independently reported end-to-end
    cycle count; when given it is cross-checked against the graph's
    makespan too, closing the loop recorder -> graph -> analyzer.
    Partial runs (deadlock / round budget) are held to the same
    standard — their makespan is the last recorded cycle.
    """
    if analysis is None:
        from repro.critpath.analyze import analyze

        analysis = analyze(graph)
    loc = f"critpath ({graph.outcome or 'unknown'})"
    report = report if report is not None else Report(loc)

    if analysis.total != analysis.makespan:
        report.emit(
            "V1000", loc,
            f"critical path sums to {analysis.total} cycles but the run's "
            f"makespan is {analysis.makespan} (drift "
            f"{analysis.total - analysis.makespan:+d}; a binding dependency "
            f"is missing from the graph)",
        )
    if measured is not None and graph.makespan != measured:
        report.emit(
            "V1000", loc,
            f"graph makespan {graph.makespan} disagrees with the "
            f"simulator's measured {measured} cycles "
            f"(drift {graph.makespan - measured:+d})",
        )

    for edge in analysis.negative_edges[:_MAX_LISTED]:
        src = graph.nodes[edge.src]
        dst = graph.nodes[edge.dst]
        report.emit(
            "V1001", loc,
            f"negative slack {graph.slack(edge)} on {edge.kind} edge "
            f"{src.role}@{src.time} -> {dst.role}@{dst.time} "
            f"(tile {dst.tile}): effect precedes cause",
        )
    for edge in analysis.backward_edges[:_MAX_LISTED]:
        src = graph.nodes[edge.src]
        dst = graph.nodes[edge.dst]
        report.emit(
            "V1001", loc,
            f"{edge.kind} edge travels backward in time: "
            f"{src.role}@{src.time} -> {dst.role}@{dst.time}",
        )
    hidden = (max(0, len(analysis.negative_edges) - _MAX_LISTED)
              + max(0, len(analysis.backward_edges) - _MAX_LISTED))
    if hidden:
        report.emit("V1001", loc, f"... and {hidden} more causality "
                                  f"violation(s)")
    if analysis.cycle_nodes:
        report.emit(
            "V1001", loc,
            f"causal graph has a cycle through node(s) "
            f"{analysis.cycle_nodes[:_MAX_LISTED]}: an event cannot "
            f"transitively depend on itself",
        )
    return report


def check_critpath_capture(payload, report=None):
    """Verify a saved ``repro critpath --json`` artifact.

    Rebuilds the graph from the capture's record stream and re-analyzes
    it from scratch — the artifact's own ``analysis`` block is *not*
    trusted.
    """
    from repro.critpath.analyze import analyze
    from repro.critpath.graph import DependencyGraph

    graph = DependencyGraph.from_dict(payload["graph"])
    return check_critpath(
        graph, analyze(graph),
        measured=payload.get("measured_cycles"),
        report=report,
    )
