"""Stitch-plan checks: prove Algorithm 1's output is legal chip-wide.

Rules (``V3xx``):

* ``V301`` — two fused paths share a directed inter-patch link
  (the compile-time schedule must be contention free).
* ``V302`` — a path exceeds the 6-link-traversal round-trip budget.
* ``V303`` — a fused path misses the 5 ns single-cycle delay budget.
* ``V304`` — a stage's SPM footprint exceeds the 4 KB scratchpad.
* ``V305`` — two regions of one stage overlap (address spaces of a
  tile's regions must be disjoint).
* ``V306`` — a replicated region is not read-only (replication is only
  legal into const regions).
* ``V307`` — a fused mapping stores from the remote patch (remote
  halves may only load replicated read-only data; a remote store would
  write the wrong tile's scratchpad).
* ``V308`` — plan structure: duplicate tiles, double-spent patches, or
  an option name inconsistent with the placement's patch types.
"""

from repro.core.patches import PATCH_TYPES
from repro.core.stitching import BASELINE
from repro.interpatch import timing
from repro.isa.instructions import Op
from repro.mem.spm import SPM_BASE, SPM_SIZE
from repro.verify.diagnostics import Report, Severity, register_rule

register_rule("V301", Severity.ERROR,
              "fused paths are not mutually link-disjoint", "plan-checks")
register_rule("V302", Severity.ERROR,
              "path exceeds the 6-traversal hop budget", "plan-checks")
register_rule("V303", Severity.ERROR,
              "fused path misses the 5 ns delay budget", "plan-checks")
register_rule("V304", Severity.ERROR,
              "stage SPM footprint exceeds 4 KB", "plan-checks")
register_rule("V305", Severity.ERROR,
              "stage regions overlap in the SPM address space",
              "plan-checks")
register_rule("V306", Severity.ERROR,
              "replication into a non-read-only region", "plan-checks")
register_rule("V307", Severity.ERROR,
              "fused mapping stores from the remote patch", "plan-checks")
register_rule("V308", Severity.ERROR,
              "plan structure violates tile/patch/type constraints",
              "plan-checks")


def _path_links(path):
    forward = list(zip(path, path[1:]))
    return forward + [(b, a) for a, b in forward]


def check_plan(plan, placement, stage_kernels=None, stage_compiled=None,
               report=None):
    """Verify one :class:`repro.core.stitching.StitchPlan`.

    ``stage_kernels`` maps stage id to its :class:`Kernel` (enables the
    SPM rules); ``stage_compiled`` maps stage id to the chosen
    :class:`CompiledKernel` (enables the replication/remote-store
    rules).  Without them only the network-level rules run.
    """
    report = report if report is not None else Report(plan.app_name)
    assignments = sorted(plan.assignments.values(), key=lambda a: a.stage_id)

    link_owner = {}
    origin_seen = {}
    patch_spent = {}
    for a in assignments:
        loc = f"{plan.app_name}/stage{a.stage_id}"
        if a.tile in origin_seen:
            report.emit(
                "V308", loc,
                f"tile {a.tile} already hosts stage {origin_seen[a.tile]}",
            )
        origin_seen[a.tile] = a.stage_id

        if a.option == BASELINE:
            if a.remote_tile is not None or a.path is not None:
                report.emit(
                    "V308", loc,
                    "baseline assignment carries a remote tile or path",
                )
            continue

        local_name = a.option.split("+", 1)[0]
        if local_name not in PATCH_TYPES:
            # Conventional per-core accelerator (e.g. LOCUS-SFU): not
            # drawn from the shared polymorphic patch pool.
            continue
        tile_type = placement.type_of(a.tile).name
        if tile_type != local_name:
            report.emit(
                "V308", loc,
                f"option {a.option!r} needs a {local_name} tile but "
                f"tile {a.tile} carries {tile_type}",
            )
        for patch_tile in (a.tile, a.remote_tile):
            if patch_tile is None:
                continue
            if patch_tile in patch_spent:
                report.emit(
                    "V308", loc,
                    f"patch of tile {patch_tile} already spent on stage "
                    f"{patch_spent[patch_tile]}",
                )
            patch_spent[patch_tile] = a.stage_id

        if not a.fused:
            continue
        if a.path is None or len(a.path) < 2:
            report.emit("V308", loc, "fused assignment lacks a reserved path")
            continue
        if a.path[0] != a.tile or a.path[-1] != a.remote_tile:
            report.emit(
                "V308", loc,
                f"path {a.path} does not join tile {a.tile} to remote "
                f"tile {a.remote_tile}",
            )
        remote_name = a.option.split("+", 1)[1]
        remote_type = placement.type_of(a.remote_tile).name
        if remote_type != remote_name:
            report.emit(
                "V308", loc,
                f"option {a.option!r} needs a {remote_name} remote but "
                f"tile {a.remote_tile} carries {remote_type}",
            )

        for link in _path_links(a.path):
            if link in link_owner and link_owner[link] != a.stage_id:
                report.emit(
                    "V301", loc,
                    f"link {link} already reserved by stage "
                    f"{link_owner[link]}: the schedule contends",
                )
            link_owner.setdefault(link, a.stage_id)

        traversals = timing.path_traversals(a.path)
        if traversals > timing.MAX_PATH_TRAVERSALS:
            report.emit(
                "V302", loc,
                f"path {a.path} needs {traversals} link traversals "
                f"(budget {timing.MAX_PATH_TRAVERSALS})",
            )
        else:
            ptype_a = placement.type_of(a.tile)
            ptype_b = placement.type_of(a.remote_tile)
            delay = timing.fused_path_delay_ns(ptype_a, ptype_b, a.path)
            if not timing.within_delay_budget(ptype_a, ptype_b, a.path):
                report.emit(
                    "V303", loc,
                    f"{{{ptype_a.name}, {ptype_b.name}}} over {a.path} "
                    f"takes {delay:.2f} ns (clock {timing.CLOCK_NS:.2f} ns)",
                )

    if stage_kernels:
        for sid, kernel in sorted(stage_kernels.items()):
            _check_stage_memory(plan.app_name, sid, kernel, report)
    if stage_compiled:
        for sid, compiled in sorted(stage_compiled.items()):
            if compiled is not None:
                _check_stage_compiled(plan.app_name, sid, compiled, report)
    return report


def _stage_regions(kernel):
    regions = [r for r, _ in kernel.inputs] + [r for r, _ in kernel.consts]
    regions += list(kernel.outputs)
    # An in-place kernel legitimately lists one region as both input
    # and output; only *distinct* regions must occupy disjoint space.
    unique = {}
    for region in regions:
        unique.setdefault((region.name, region.addr, region.nwords), region)
    return list(unique.values())


def _check_stage_memory(app_name, sid, kernel, report):
    loc = f"{app_name}/stage{sid}/{kernel.name}"
    regions = _stage_regions(kernel)
    for region in regions:
        if region.addr < SPM_BASE or region.end > SPM_BASE + SPM_SIZE:
            report.emit(
                "V304", loc,
                f"region {region.name} [{region.addr:#x}, {region.end:#x}) "
                f"leaves the {SPM_SIZE // 1024} KB scratchpad window",
            )
    spans = sorted(regions, key=lambda r: r.addr)
    for left, right in zip(spans, spans[1:]):
        if right.addr < left.end:
            report.emit(
                "V305", loc,
                f"regions {left.name} and {right.name} overlap "
                f"([{left.addr:#x},{left.end:#x}) vs "
                f"[{right.addr:#x},{right.end:#x}))",
            )


def _check_stage_compiled(app_name, sid, compiled, report):
    loc = f"{app_name}/stage{sid}/{compiled.kernel.name}"
    const_regions = {region for region, _ in compiled.kernel.consts}
    for region in compiled.replicated_regions:
        if region not in const_regions:
            report.emit(
                "V306", loc,
                f"replicated region {region.name} is not one of the "
                "kernel's read-only const regions",
            )
    for mapping in compiled.mappings:
        for node_id in mapping.remote_node_ids:
            node = mapping.candidate.dfg.nodes[node_id]
            if node.op is Op.SW:
                report.emit(
                    "V307", loc,
                    f"{mapping!r} places a store at the remote patch",
                )
