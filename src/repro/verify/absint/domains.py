"""Abstract domains for the forward dataflow engine.

Two lattices, combined into one product state per program point:

* **interval domain** — each register abstracts to a signed 32-bit
  interval ``(lo, hi)``; ``None`` is bottom (no value reaches here).
  Transfer functions mirror :mod:`repro.isa.instructions` semantics and
  fall back to TOP whenever two's-complement wrap-around could occur,
  so the abstraction is sound against :class:`repro.cpu.core.Core`
  (``wrap32`` at every write).
* **definedness domain** — the set of registers written on *every*
  path from the entry; the join is set intersection, so a register
  missing from the set may be read before its first write on some
  path (the V800 family's evidence).

Intervals are plain ``(lo, hi)`` tuples (cheap to copy and hash);
module functions implement join/meet/widening and the per-opcode
transfer.  Widening jumps to the nearest *threshold* — the constants
the program itself mentions plus a fixed ladder (0, ±1, the 16/19-bit
immediate limits, the 32-bit extremes) — which keeps counted loops
(``addi``/``bne`` against a ``movi`` bound) at their exact bounds
instead of blowing straight to TOP.
"""

import bisect

from repro.isa.instructions import Op

INT32_MIN = -(1 << 31)
INT32_MAX = (1 << 31) - 1
UINT32_MAX = (1 << 32) - 1

TOP = (INT32_MIN, INT32_MAX)
ZERO = (0, 0)
BOOL = (0, 1)

# Always-available widening thresholds; program constants are added on
# top (see thresholds_for_program).
BASE_THRESHOLDS = (
    INT32_MIN, -(1 << 19), -(1 << 16), -256, -1, 0, 1, 256,
    (1 << 16) - 1, (1 << 19) - 1, INT32_MAX,
)


def interval(lo, hi):
    """An interval, or bottom (None) when empty."""
    return (lo, hi) if lo <= hi else None


def is_singleton(ival):
    return ival is not None and ival[0] == ival[1]


def contains(ival, value):
    return ival is not None and ival[0] <= value <= ival[1]


def join(a, b):
    if a is None:
        return b
    if b is None:
        return a
    return (min(a[0], b[0]), max(a[1], b[1]))


def meet(a, b):
    if a is None or b is None:
        return None
    return interval(max(a[0], b[0]), min(a[1], b[1]))


def widen(old, new, thresholds):
    """Classic threshold widening: jump unstable bounds outward to the
    nearest threshold instead of creeping one loop iteration at a time.
    """
    if old is None:
        return new
    if new is None:
        return old
    lo, hi = old
    if new[0] < lo:
        index = bisect.bisect_right(thresholds, new[0]) - 1
        lo = thresholds[index] if index >= 0 else INT32_MIN
    if new[1] > hi:
        index = bisect.bisect_left(thresholds, new[1])
        hi = thresholds[index] if index < len(thresholds) else INT32_MAX
    return (lo, hi)


def thresholds_for_program(program):
    """The widening ladder: base thresholds + every constant the
    program mentions (movi/addi immediates and their word-stepped
    neighbours), clamped to the 32-bit signed range."""
    values = set(BASE_THRESHOLDS)
    for instr in program.instructions:
        if instr.imm is not None:
            values.add(instr.imm)
            values.add(instr.imm - 1)
            values.add(instr.imm + 1)
    return tuple(sorted(
        v for v in values if INT32_MIN <= v <= INT32_MAX
    ))


def _fit(lo, hi):
    """Clamp a computed bound pair to a sound 32-bit interval: exact
    when no wrap can happen, TOP otherwise."""
    if INT32_MIN <= lo and hi <= INT32_MAX:
        return (lo, hi)
    return TOP


def _bitlen_cap(hi):
    """Smallest all-ones mask covering hi (for or/xor upper bounds)."""
    return (1 << max(hi, 0).bit_length()) - 1


def t_add(a, b):
    return _fit(a[0] + b[0], a[1] + b[1])


def t_sub(a, b):
    return _fit(a[0] - b[1], a[1] - b[0])


def t_mul(a, b):
    corners = (a[0] * b[0], a[0] * b[1], a[1] * b[0], a[1] * b[1])
    return _fit(min(corners), max(corners))


def t_mulh(a, b):
    corners = (a[0] * b[0], a[0] * b[1], a[1] * b[0], a[1] * b[1])
    return (min(corners) >> 32, max(corners) >> 32)


def t_and(a, b):
    # AND with a provably non-negative side stays within [0, that hi].
    if a[0] >= 0 and b[0] >= 0:
        return (0, min(a[1], b[1]))
    if a[0] >= 0:
        return (0, a[1])
    if b[0] >= 0:
        return (0, b[1])
    return TOP


def t_or(a, b):
    if a[0] >= 0 and b[0] >= 0:
        return (max(a[0], b[0]), _bitlen_cap(max(a[1], b[1])))
    return TOP


def t_xor(a, b):
    if a[0] >= 0 and b[0] >= 0:
        return (0, _bitlen_cap(max(a[1], b[1])))
    return TOP


def t_slt(a, b):
    if a[1] < b[0]:
        return (1, 1)
    if a[0] >= b[1]:
        return (0, 0)
    return BOOL


def t_sltu(a, b):
    if a[0] >= 0 and b[0] >= 0:
        return t_slt(a, b)
    return BOOL


def t_seq(a, b):
    if is_singleton(a) and a == b:
        return (1, 1)
    if meet(a, b) is None:
        return (0, 0)
    return BOOL


def t_sll(a, b):
    if is_singleton(b):
        amount = b[0] & 31
        return _fit(a[0] << amount, a[1] << amount)
    return TOP


def t_srl(a, b):
    if is_singleton(b):
        amount = b[0] & 31
        if amount == 0:
            return a
        if a[0] >= 0:
            return (a[0] >> amount, a[1] >> amount)
        return (0, UINT32_MAX >> amount)
    if a[0] >= 0:
        # Any amount in [0, 31] can only shrink a non-negative value.
        return (0, a[1])
    return TOP


def t_sra(a, b):
    if is_singleton(b):
        amount = b[0] & 31
        return (a[0] >> amount, a[1] >> amount)
    # x >> n moves monotonically toward the sign limit (0 or -1).
    corners = (a[0], a[1], a[0] >> 31, a[1] >> 31)
    return (min(corners), max(corners))


_ALU = {
    Op.ADD: t_add, Op.ADDI: t_add,
    Op.SUB: t_sub,
    Op.AND: t_and, Op.ANDI: t_and,
    Op.OR: t_or, Op.ORI: t_or,
    Op.XOR: t_xor, Op.XORI: t_xor,
    Op.SLT: t_slt, Op.SLTI: t_slt,
    Op.SLTU: t_sltu,
    Op.SEQ: t_seq,
    Op.MUL: t_mul,
    Op.MULH: t_mulh,
    Op.SLL: t_sll, Op.SLLI: t_sll,
    Op.SRL: t_srl, Op.SRLI: t_srl,
    Op.SRA: t_sra, Op.SRAI: t_sra,
}


class AbsState:
    """Product state: per-register interval + defined-on-all-paths set."""

    __slots__ = ("ivals", "defined")

    def __init__(self, ivals, defined):
        self.ivals = ivals          # list of interval-or-None, index = reg
        self.defined = defined      # set of register indices

    @classmethod
    def entry(cls, num_regs, allowed_live_in=()):
        """State at the program entry.

        Registers the harness legitimately pre-loads (and ``r0``) are
        defined; everything else is *maybe-undefined* but still holds
        TOP (the concrete machine zero-fills the register file, and a
        raw harness may have left anything behind).
        """
        ivals = [TOP] * num_regs
        ivals[0] = ZERO
        return cls(ivals, {0} | {r for r in allowed_live_in if r < num_regs})

    def copy(self):
        return AbsState(list(self.ivals), set(self.defined))

    def get(self, reg):
        return self.ivals[reg]

    def set(self, reg, ival):
        if reg == 0:
            return
        self.ivals[reg] = ival
        self.defined.add(reg)

    def refine(self, reg, ival):
        """Narrow a register without touching definedness (branch edge)."""
        if reg == 0:
            return
        self.ivals[reg] = ival

    def join_from(self, other):
        """In-place join; returns True when this state changed."""
        changed = False
        for reg, (mine, theirs) in enumerate(zip(self.ivals, other.ivals)):
            merged = join(mine, theirs)
            if merged != mine:
                self.ivals[reg] = merged
                changed = True
        narrowed = self.defined & other.defined
        if narrowed != self.defined:
            self.defined = narrowed
            changed = True
        return changed

    def widen_from(self, other, thresholds):
        """In-place widening join at a loop header."""
        changed = False
        for reg, (mine, theirs) in enumerate(zip(self.ivals, other.ivals)):
            widened = widen(mine, join(mine, theirs), thresholds)
            if widened != mine:
                self.ivals[reg] = widened
                changed = True
        narrowed = self.defined & other.defined
        if narrowed != self.defined:
            self.defined = narrowed
            changed = True
        return changed

    def __eq__(self, other):
        return (isinstance(other, AbsState)
                and self.ivals == other.ivals
                and self.defined == other.defined)

    def __repr__(self):
        shown = ", ".join(
            f"r{reg}={ival}" for reg, ival in enumerate(self.ivals)
            if ival not in (TOP, None) and reg
        )
        return f"AbsState({shown or 'top'}, defined={sorted(self.defined)})"


def transfer(state, instr, pc):
    """Apply one instruction to ``state`` in place.

    Sound w.r.t. the interpreter: every register the instruction may
    write ends up with an interval containing every value
    :class:`~repro.cpu.core.Core` could store there.
    """
    op = instr.op
    fn = _ALU.get(op)
    if fn is not None:
        a = state.get(instr.ra)
        b = (instr.imm, instr.imm) if instr.imm is not None else state.get(instr.rb)
        if a is None or b is None:
            result = TOP
        else:
            result = fn(a, b)
        state.set(instr.rd, result)
    elif op is Op.MOV:
        state.set(instr.rd, state.get(instr.ra))
    elif op is Op.MOVI:
        state.set(instr.rd, (instr.imm, instr.imm))
    elif op is Op.LW:
        state.set(instr.rd, TOP)   # memory contents are not modeled
    elif op is Op.CIX:
        for reg in instr.outs or ():
            state.set(reg, TOP)    # patch outputs are not modeled
    elif op is Op.JAL:
        state.set(15, (pc + 1, pc + 1))
    # sw / branches / jmp / jr / halt / nop / send / recv write nothing.


_CONDS = {Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BLTU, Op.BGEU}


def refine_branch(state, instr, taken):
    """Refine ``state`` along one edge of a conditional branch.

    Returns the refined state, or ``None`` when the edge is provably
    infeasible (the branch condition cannot evaluate that way for any
    concrete values in the incoming intervals).
    """
    op = instr.op
    if op not in _CONDS:
        return state
    a = state.get(instr.ra)
    b = state.get(instr.rb)
    if a is None or b is None:
        return None

    # Unsigned compares coincide with signed ones on non-negative
    # intervals; anything else stays unrefined (sound, just imprecise).
    if op in (Op.BLTU, Op.BGEU):
        if a[0] < 0 or b[0] < 0:
            return state
        op = Op.BLT if op is Op.BLTU else Op.BGE

    equal = (op is Op.BEQ and taken) or (op is Op.BNE and not taken)
    unequal = (op is Op.BNE and taken) or (op is Op.BEQ and not taken)
    less = (op is Op.BLT and taken) or (op is Op.BGE and not taken)
    geq = (op is Op.BGE and taken) or (op is Op.BLT and not taken)

    if equal:
        both = meet(a, b)
        if both is None:
            return None
        state.refine(instr.ra, both)
        state.refine(instr.rb, both)
        return state
    if unequal:
        if is_singleton(a) and a == b:
            return None
        # A singleton can trim the other side's matching endpoint.
        if is_singleton(a):
            b2 = _trim(b, a[0])
            if b2 is None:
                return None
            state.refine(instr.rb, b2)
        elif is_singleton(b):
            a2 = _trim(a, b[0])
            if a2 is None:
                return None
            state.refine(instr.ra, a2)
        return state
    if less:
        a2 = meet(a, (INT32_MIN, b[1] - 1))
        b2 = meet(b, (a[0] + 1, INT32_MAX))
        if a2 is None or b2 is None:
            return None
        state.refine(instr.ra, a2)
        state.refine(instr.rb, b2)
        return state
    if geq:
        a2 = meet(a, (b[0], INT32_MAX))
        b2 = meet(b, (INT32_MIN, a[1]))
        if a2 is None or b2 is None:
            return None
        state.refine(instr.ra, a2)
        state.refine(instr.rb, b2)
        return state
    return state


def _trim(ival, value):
    """Remove ``value`` from an interval when it sits on an endpoint."""
    lo, hi = ival
    if lo == hi == value:
        return None
    if lo == value:
        return (lo + 1, hi)
    if hi == value:
        return (lo, hi - 1)
    return ival
