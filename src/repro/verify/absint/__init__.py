"""Reusable forward abstract-interpretation framework for stitch-lint.

Layers:

* :mod:`~repro.verify.absint.cfg` — labelled CFG over an assembled
  program: taken/fall-through edges, dominators, natural loops;
* :mod:`~repro.verify.absint.domains` — the interval value-range
  lattice and the written-before-read definedness lattice, combined
  into one product :class:`AbsState`, plus per-opcode transfer
  functions and branch-edge refinement;
* :mod:`~repro.verify.absint.solver` — the worklist fixed-point with
  threshold widening, producing an :class:`Analysis` whose per-block
  states the V800 rule family (``verify/dataflow_checks.py``), the
  soundness harness and ``repro verify --dump-cfg`` all consume;
* :mod:`~repro.verify.absint.dot` — Graphviz rendering of an analyzed
  CFG.
"""

from repro.verify.absint.cfg import CFG, Loop, render_trace, targets_valid
from repro.verify.absint.domains import (
    AbsState,
    BOOL,
    INT32_MAX,
    INT32_MIN,
    TOP,
    contains,
    interval,
    join,
    meet,
    refine_branch,
    thresholds_for_program,
    transfer,
    widen,
)
from repro.verify.absint.dot import cfg_dot
from repro.verify.absint.solver import Analysis, AnalysisError, analyze_program

__all__ = [
    "CFG",
    "Loop",
    "render_trace",
    "targets_valid",
    "AbsState",
    "BOOL",
    "INT32_MAX",
    "INT32_MIN",
    "TOP",
    "contains",
    "interval",
    "join",
    "meet",
    "refine_branch",
    "thresholds_for_program",
    "transfer",
    "widen",
    "Analysis",
    "AnalysisError",
    "analyze_program",
    "cfg_dot",
]
