"""Control-flow graph over an assembled :class:`~repro.isa.program.Program`.

Builds on the program's own basic-block partition (the leader
algorithm in ``isa/program.py``) and the successor relation of
:mod:`repro.compiler.liveness`, and adds what the abstract interpreter
needs on top: labelled edges (taken / fall-through / unconditional /
indirect), predecessors, a reverse post-order, dominators, and the
natural loops the back edges induce.
"""

from repro.compiler.liveness import successor_map
from repro.isa.instructions import Op

EDGE_TAKEN = "taken"
EDGE_FALL = "fall"
EDGE_ALWAYS = "always"
EDGE_INDIRECT = "indirect"


class Edge:
    """One CFG edge; ``branch`` is the conditional branch instruction
    refining the edge (None for unconditional/indirect edges)."""

    __slots__ = ("src", "dst", "kind", "branch")

    def __init__(self, src, dst, kind, branch=None):
        self.src = src
        self.dst = dst
        self.kind = kind
        self.branch = branch

    def __repr__(self):
        return f"Edge(#{self.src} -> #{self.dst}, {self.kind})"


class Loop:
    """A natural loop: header block + the blocks of its body."""

    __slots__ = ("header", "blocks", "back_edges")

    def __init__(self, header, blocks, back_edges):
        self.header = header
        self.blocks = frozenset(blocks)
        self.back_edges = tuple(back_edges)

    def exits(self, cfg):
        """Edges leaving the loop body."""
        return [
            edge for block in sorted(self.blocks)
            for edge in cfg.out_edges[block]
            if edge.dst not in self.blocks
        ]

    def __repr__(self):
        return f"Loop(header=#{self.header}, {len(self.blocks)} blocks)"


def targets_valid(program):
    """True when every branch target is in range and a block leader
    (the V104 precondition every CFG-based pass shares)."""
    leaders = {block.start for block in program.basic_blocks()}
    for instr in program.instructions:
        if instr.target is None or instr.op is Op.JR:
            continue
        if not 0 <= instr.target < len(program) or instr.target not in leaders:
            return False
    return True


class CFG:
    """The labelled control-flow graph of one program."""

    def __init__(self, program):
        self.program = program
        self.blocks = program.basic_blocks()
        self.entry = 0
        self.out_edges = {block.index: [] for block in self.blocks}
        self.in_edges = {block.index: [] for block in self.blocks}
        self._build_edges()
        self.rpo = self._reverse_post_order()
        self._rpo_index = {b: i for i, b in enumerate(self.rpo)}
        self.dominators = self._dominators()
        self.loops = self._natural_loops()
        self.loop_headers = frozenset(loop.header for loop in self.loops)

    # -- construction -----------------------------------------------------

    def _build_edges(self):
        succs = successor_map(self.program, self.blocks)
        for block in self.blocks:
            last = block.instructions[-1] if len(block) else None
            successors = succs[block.index]
            if last is None or not successors:
                continue
            op = last.op
            if op is Op.JR:
                for dst in successors:
                    self._add(block.index, dst, EDGE_INDIRECT)
            elif op in (Op.JMP, Op.JAL):
                for dst in successors:
                    self._add(block.index, dst, EDGE_ALWAYS)
            elif last.is_branch():
                start_to_index = {b.start: b.index for b in self.blocks}
                target = start_to_index[last.target]
                self._add(block.index, target, EDGE_TAKEN, last)
                fall = block.index + 1
                if fall < len(self.blocks):
                    # Kept even when target == fall: the two edges carry
                    # different refinements of the branch condition.
                    self._add(block.index, fall, EDGE_FALL, last)
            else:
                for dst in successors:
                    self._add(block.index, dst, EDGE_ALWAYS)

    def _add(self, src, dst, kind, branch=None):
        edge = Edge(src, dst, kind, branch)
        self.out_edges[src].append(edge)
        self.in_edges[dst].append(edge)

    def _reverse_post_order(self):
        seen = set()
        order = []

        def visit(index):
            stack = [(index, iter(self.out_edges[index]))]
            seen.add(index)
            while stack:
                node, edges = stack[-1]
                advanced = False
                for edge in edges:
                    if edge.dst not in seen:
                        seen.add(edge.dst)
                        stack.append((edge.dst, iter(self.out_edges[edge.dst])))
                        advanced = True
                        break
                if not advanced:
                    order.append(node)
                    stack.pop()

        if self.blocks:
            visit(self.entry)
        return tuple(reversed(order))

    def _dominators(self):
        """Iterative dominator sets over the graph-reachable blocks."""
        reachable = set(self.rpo)
        dom = {b: set(reachable) for b in reachable}
        if self.entry in dom:
            dom[self.entry] = {self.entry}
        changed = True
        while changed:
            changed = False
            for block in self.rpo:
                if block == self.entry:
                    continue
                preds = [
                    e.src for e in self.in_edges[block] if e.src in reachable
                ]
                if not preds:
                    continue
                new = set.intersection(*(dom[p] for p in preds)) | {block}
                if new != dom[block]:
                    dom[block] = new
                    changed = True
        return dom

    def _natural_loops(self):
        by_header = {}
        for block in self.rpo:
            for edge in self.out_edges[block]:
                header = edge.dst
                if header in self.dominators.get(block, ()):
                    by_header.setdefault(header, []).append(edge)
        loops = []
        for header, back_edges in sorted(by_header.items()):
            body = {header}
            stack = [e.src for e in back_edges if e.src != header]
            while stack:
                node = stack.pop()
                if node in body:
                    continue
                body.add(node)
                stack.extend(
                    e.src for e in self.in_edges[node] if e.src not in body
                )
            loops.append(Loop(header, body, back_edges))
        return tuple(loops)

    # -- queries ----------------------------------------------------------

    def graph_reachable(self):
        """Blocks reachable from the entry ignoring edge feasibility."""
        return frozenset(self.rpo)

    def block_trace(self, target, allowed_edges=None, block_filter=None):
        """Shortest entry-to-``target`` block path for diagnostics.

        ``allowed_edges`` restricts the walk to a set of (src, dst)
        pairs (the solver's feasible edges); ``block_filter`` drops
        intermediate blocks (witnesses that must avoid a definition).
        Returns a list of block indices, or None when unreachable under
        the constraints.
        """
        if target == self.entry:
            return [self.entry]
        if block_filter is not None and not block_filter(self.entry):
            return None
        parent = {self.entry: None}
        queue = [self.entry]
        while queue:
            node = queue.pop(0)
            for edge in self.out_edges[node]:
                dst = edge.dst
                if dst in parent:
                    continue
                if allowed_edges is not None and (node, dst) not in allowed_edges:
                    continue
                if dst != target and block_filter is not None \
                        and not block_filter(dst):
                    continue
                parent[dst] = node
                if dst == target:
                    path = [dst]
                    while parent[path[-1]] is not None:
                        path.append(parent[path[-1]])
                    return list(reversed(path))
                queue.append(dst)
        return None


def render_trace(trace):
    """Human form of a block-index witness path."""
    if not trace:
        return "<no path>"
    return " -> ".join(f"#{index}" for index in trace)
