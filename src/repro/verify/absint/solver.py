"""Worklist fixed-point solver for the forward abstract interpreter.

Standard design: block in-states join the out-states of feasible
incoming edges; loop headers apply threshold widening after a short
delay so counted loops settle at their exact bounds before the
widening jumps anything to TOP.  Conditional branch edges refine the
propagated state (and an edge whose refinement is empty is *infeasible*
— its destination may become semantically unreachable even though the
graph reaches it, the V804 evidence).

The result object keeps the per-block in-states; checks and the CLI's
CFG dump re-walk a block's instructions with the same transfer to get
the state at any program point.
"""

from repro.verify.absint.cfg import (
    CFG,
    EDGE_FALL,
    EDGE_TAKEN,
    targets_valid,
)
from repro.verify.absint.domains import (
    AbsState,
    refine_branch,
    thresholds_for_program,
    transfer,
)

# Joins a loop header absorbs before widening kicks in.
WIDEN_DELAY = 3

# Widen any block that keeps re-converging past this visit count, even
# outside detected natural loops (irreducible cycles through jr).
_SOFT_WIDEN_CAP = 16

# Hard iteration backstop; threshold widening terminates far earlier.
_MAX_VISITS_PER_BLOCK = 1000


class AnalysisError(RuntimeError):
    """The fixed point did not converge (indicates a framework bug)."""


class Analysis:
    """Fixed-point result: per-block in-states + feasibility facts."""

    def __init__(self, program, cfg, block_in, feasible_edges, num_regs):
        self.program = program
        self.cfg = cfg
        self.block_in = block_in              # block index -> AbsState
        self.feasible_edges = feasible_edges  # set of (src, dst)
        self.num_regs = num_regs

    @property
    def reachable(self):
        """Blocks the abstract execution actually reaches."""
        return frozenset(self.block_in)

    def semantically_unreachable(self):
        """Graph-reachable blocks no feasible path reaches."""
        return sorted(self.cfg.graph_reachable() - self.reachable)

    def instruction_states(self, block_index):
        """Yield ``(pc, instr, state_before)`` through one block.

        ``state_before`` is live (mutated by the walk) — copy it to
        keep a snapshot.
        """
        state = self.block_in[block_index].copy()
        block = self.cfg.blocks[block_index]
        for offset, instr in enumerate(block.instructions):
            pc = block.start + offset
            yield pc, instr, state
            transfer(state, instr, pc)

    def post_write_intervals(self):
        """``{pc: {reg: interval}}`` for every reachable write.

        The soundness harness checks concrete execution against this:
        after the instruction at ``pc`` retires, each written register's
        value must lie inside its static interval.
        """
        result = {}
        for block_index in self.block_in:
            state = self.block_in[block_index].copy()
            block = self.cfg.blocks[block_index]
            for offset, instr in enumerate(block.instructions):
                pc = block.start + offset
                transfer(state, instr, pc)
                written = {
                    reg: state.get(reg)
                    for reg in instr.writes() if reg != 0
                }
                if written:
                    result[pc] = written
        return result

    def trace_to(self, block_index):
        """A feasible entry-to-block witness path (block indices)."""
        return self.cfg.block_trace(
            block_index, allowed_edges=self.feasible_edges
        )


def analyze_program(program, allowed_live_in=(), num_regs=16,
                    widen_delay=WIDEN_DELAY):
    """Run the abstract interpreter to fixpoint; returns :class:`Analysis`.

    Returns ``None`` for programs whose CFG cannot be built (empty, or
    branch targets out of range — the program lint's V104 territory).
    """
    if not len(program):
        return None
    if not targets_valid(program):
        return None
    cfg = CFG(program)
    thresholds = thresholds_for_program(program)

    block_in = {cfg.entry: AbsState.entry(num_regs, allowed_live_in)}
    visits = {cfg.entry: 0}
    feasible_edges = set()
    worklist = [cfg.entry]
    queued = {cfg.entry}

    while worklist:
        # Process in reverse post-order for fast convergence.
        worklist.sort(key=lambda b: cfg._rpo_index.get(b, len(cfg.rpo)))
        index = worklist.pop(0)
        queued.discard(index)
        visits[index] = visits.get(index, 0) + 1
        if visits[index] > _MAX_VISITS_PER_BLOCK:
            raise AnalysisError(
                f"{program.name}: block #{index} visited "
                f"{visits[index]} times without stabilizing"
            )
        state = block_in[index].copy()
        block = cfg.blocks[index]
        for offset, instr in enumerate(block.instructions):
            transfer(state, instr, block.start + offset)

        for edge in cfg.out_edges[index]:
            out = state.copy()
            if edge.kind in (EDGE_TAKEN, EDGE_FALL) and edge.branch is not None:
                out = refine_branch(out, edge.branch, edge.kind == EDGE_TAKEN)
                if out is None:
                    continue  # provably infeasible edge
            feasible_edges.add((index, edge.dst))
            dst = edge.dst
            existing = block_in.get(dst)
            if existing is None:
                block_in[dst] = out
                changed = True
            elif (dst in cfg.loop_headers and visits.get(dst, 0) >= widen_delay) \
                    or visits.get(dst, 0) >= _SOFT_WIDEN_CAP:
                # The second arm catches cycles natural-loop detection
                # misses (irreducible regions via jr): widen anywhere
                # that keeps re-converging so the fixpoint terminates.
                changed = existing.widen_from(out, thresholds)
            else:
                changed = existing.join_from(out)
            if changed and dst not in queued:
                worklist.append(dst)
                queued.add(dst)

    return Analysis(program, cfg, block_in, feasible_edges, num_regs)
