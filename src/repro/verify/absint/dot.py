"""Graphviz dump of an analyzed CFG (``repro verify --dump-cfg``).

Follows the conventions of :mod:`repro.provenance.dot` (plain DOT
text, no graphviz dependency, monospace boxes) and reuses its escaping
helper.  Each block node shows its instruction range, the first few
instructions, and the non-trivial register intervals at block entry;
loop headers get a double border, semantically unreachable blocks are
dashed gray, and edges are labelled taken / fall.
"""

from repro.provenance.dot import _esc
from repro.verify.absint.cfg import EDGE_FALL, EDGE_INDIRECT, EDGE_TAKEN
from repro.verify.absint.domains import TOP

_MAX_INSTRS_SHOWN = 6
_MAX_IVALS_SHOWN = 6


def _format_interval(ival):
    if ival is None:
        return "bot"
    lo, hi = ival
    if lo == hi:
        return f"{lo:#x}" if abs(lo) >= 4096 else str(lo)
    fmt = (lambda v: f"{v:#x}") if max(abs(lo), abs(hi)) >= 4096 else str
    return f"[{fmt(lo)}, {fmt(hi)}]"


def _state_lines(state, num_regs):
    shown = []
    for reg in range(1, num_regs):
        ival = state.get(reg)
        if ival == TOP or ival is None:
            continue
        mark = "" if reg in state.defined else "?"
        shown.append(f"r{reg}{mark}={_format_interval(ival)}")
    if not shown:
        return []
    lines = []
    for start in range(0, min(len(shown), _MAX_IVALS_SHOWN), 3):
        lines.append(" ".join(shown[start:start + 3]))
    if len(shown) > _MAX_IVALS_SHOWN:
        lines.append(f"(+{len(shown) - _MAX_IVALS_SHOWN} more)")
    return lines


def cfg_dot(analysis):
    """DOT digraph of an :class:`~repro.verify.absint.solver.Analysis`."""
    cfg = analysis.cfg
    program = analysis.program
    lines = [
        f'digraph "{_esc(program.name)}" {{',
        "  rankdir=TB;",
        '  node [shape=box, style=filled, fillcolor=white, '
        'fontname="monospace", fontsize=10];',
    ]
    for block in cfg.blocks:
        label_parts = [f"block #{block.index} [{block.start}:{block.end})"]
        name = program.label_of(block.start)
        if name is not None:
            label_parts[0] += f"  {name}:"
        for instr in block.instructions[:_MAX_INSTRS_SHOWN]:
            label_parts.append(instr.text())
        if len(block) > _MAX_INSTRS_SHOWN:
            label_parts.append(f"... ({len(block) - _MAX_INSTRS_SHOWN} more)")
        attrs = []
        state = analysis.block_in.get(block.index)
        if state is not None:
            ivals = _state_lines(state, analysis.num_regs)
            if ivals:
                label_parts.append("-- entry state --")
                label_parts.extend(ivals)
        else:
            attrs.append('style="filled,dashed"')
            attrs.append('fillcolor="#eeeeee"')
            attrs.append('fontcolor="#888888"')
            label_parts.append("(unreachable)")
        if block.index in cfg.loop_headers:
            attrs.append("peripheries=2")
        label = "\\l".join(_esc(part) for part in label_parts) + "\\l"
        lines.append(
            f'  b{block.index} [label="{label}"'
            + ("".join(", " + a for a in attrs)) + "];"
        )
    for block in cfg.blocks:
        for edge in cfg.out_edges[block.index]:
            attrs = []
            if edge.kind == EDGE_TAKEN:
                attrs.append('label="T"')
            elif edge.kind == EDGE_FALL:
                attrs.append('label="F"')
            elif edge.kind == EDGE_INDIRECT:
                attrs.append('style=dotted')
            if (edge.src, edge.dst) not in analysis.feasible_edges:
                attrs.append('color="#cc0000"')
                attrs.append('style=dashed')
            suffix = f" [{', '.join(attrs)}]" if attrs else ""
            lines.append(f"  b{edge.src} -> b{edge.dst}{suffix};")
    lines.append("}")
    return "\n".join(lines) + "\n"
