"""Campaign-report checks (``V11xx``): chaos accounting invariants.

A fault-injection campaign (:mod:`repro.chaos.campaign`) is only
trustworthy if its own books balance.  These rules reconcile each
point's event log against its plan and outcome, and the campaign tally
against the points — pure consistency checks over the JSON report,
nothing simulated:

* **V1100** — every fault accounted: per point,
  ``faults_triggered + faults_untriggered`` equals the plan's fault
  count, and the triggered count equals the number of ``fault`` events
  actually logged.
* **V1101** — zero-fault identity: a point whose plan injects nothing
  must classify as ``masked`` with an empty event log, zero recovery
  cycles, and output bit-identical to golden (an unarmed injector must
  be unobservable).
* **V1102** — closed-world outcomes: every point classifies into
  exactly one of the four classes, its evidence is consistent with the
  class (an ``sdc`` point logged no detection; a
  ``detected_recovered`` point logged a recovery), and the campaign
  tally equals the per-point recount.
* **V1103** — recovery-cost reconciliation: per point, the
  ``recovery_cycles`` total equals the sum of ``cycles_cost`` over its
  ``recover`` events, and the campaign total equals the point sum.
"""

from repro.verify.diagnostics import Report, Severity, register_rule

OUTCOME_CLASSES = ("masked", "detected_recovered", "detected_failed", "sdc")

register_rule("V1100", Severity.ERROR,
              "every planned fault accounted as triggered or untriggered",
              "chaos")
register_rule("V1101", Severity.ERROR,
              "a zero-fault plan leaves the run bit-identical (masked, "
              "no events)", "chaos")
register_rule("V1102", Severity.ERROR,
              "outcomes form a closed world consistent with their evidence",
              "chaos")
register_rule("V1103", Severity.ERROR,
              "recovery cycle totals reconcile with recover events", "chaos")


def _check_point(report, loc, metrics):
    plan = metrics.get("plan", {})
    faults = plan.get("faults", [])
    events = metrics.get("events", [])
    triggered = metrics.get("faults_triggered", 0)
    untriggered = metrics.get("faults_untriggered", 0)
    outcome = metrics.get("outcome")
    loud = metrics.get("loud")

    # V1100: fault accounting.
    if triggered + untriggered != len(faults):
        report.emit(
            "V1100", loc,
            f"plan has {len(faults)} fault(s) but "
            f"{triggered} triggered + {untriggered} untriggered",
        )
    fault_events = sum(1 for e in events if e.get("kind") == "fault")
    if fault_events != triggered:
        report.emit(
            "V1100", loc,
            f"{triggered} fault(s) reported triggered but "
            f"{fault_events} fault event(s) logged",
        )

    # V1101: an unarmed plan must be unobservable.
    if not faults:
        if outcome != "masked":
            report.emit(
                "V1101", loc,
                f"zero-fault plan classified {outcome!r}, expected 'masked'",
            )
        if events:
            report.emit(
                "V1101", loc,
                f"zero-fault plan logged {len(events)} event(s)",
            )
        if metrics.get("recovery_cycles", 0):
            report.emit(
                "V1101", loc,
                f"zero-fault plan charged "
                f"{metrics['recovery_cycles']} recovery cycle(s)",
            )
        golden = metrics.get("golden_checksum")
        output = metrics.get("output_checksum")
        if output is not None and output != golden:
            report.emit(
                "V1101", loc,
                f"zero-fault output checksum {output} != golden {golden}",
            )

    # V1102: closed world + evidence consistency.
    detected = any(e.get("kind") == "detect" for e in events) or loud is not None
    recovered = any(e.get("kind") == "recover" for e in events)
    if outcome not in OUTCOME_CLASSES:
        report.emit(
            "V1102", loc,
            f"outcome {outcome!r} outside the closed world "
            f"{list(OUTCOME_CLASSES)}",
        )
    elif outcome == "sdc" and detected:
        report.emit(
            "V1102", loc,
            "classified 'sdc' but a detection was logged "
            "(should be detected_failed)",
        )
    elif outcome == "detected_recovered" and not recovered:
        report.emit(
            "V1102", loc,
            "classified 'detected_recovered' without a recover event",
        )
    elif outcome == "detected_recovered" and loud is not None:
        report.emit(
            "V1102", loc,
            f"classified 'detected_recovered' but failed loud: {loud}",
        )

    # V1103: recovery cost reconciliation.
    cost = sum(e.get("cycles_cost", 0) for e in events
               if e.get("kind") == "recover")
    if metrics.get("recovery_cycles", 0) != cost:
        report.emit(
            "V1103", loc,
            f"recovery_cycles {metrics.get('recovery_cycles', 0)} != "
            f"{cost} summed over recover events",
        )


def check_campaign(payload, subject=None):
    """Verify one campaign report (the ``run_campaign`` payload).

    Accepts the full report (with its ``campaign`` tally) or a bare
    sweep payload of chaos points; returns a
    :class:`~repro.verify.Report`.
    """
    report = Report(subject or "campaign")
    results = payload.get("results", [])
    recount = {name: 0 for name in OUTCOME_CLASSES}
    point_recovery = 0
    for record in results:
        loc = record.get("id", "?")
        if "error" in record:
            continue  # captured harness errors are outside the taxonomy
        metrics = record.get("metrics")
        if metrics is None:
            report.emit("V1102", loc, "point carries neither metrics "
                                      "nor an error")
            continue
        _check_point(report, loc, metrics)
        outcome = metrics.get("outcome")
        if outcome in recount:
            recount[outcome] += 1
        point_recovery += metrics.get("recovery_cycles", 0)

    campaign = payload.get("campaign")
    if campaign is not None:
        tally = campaign.get("outcomes", {})
        if tally != recount:
            report.emit(
                "V1102", "campaign",
                f"outcome tally {tally} != per-point recount {recount}",
            )
        if campaign.get("sdc") != recount["sdc"]:
            report.emit(
                "V1102", "campaign",
                f"sdc field {campaign.get('sdc')} != recount "
                f"{recount['sdc']}",
            )
        if campaign.get("recovery_cycles", 0) != point_recovery:
            report.emit(
                "V1103", "campaign",
                f"campaign recovery_cycles "
                f"{campaign.get('recovery_cycles', 0)} != point sum "
                f"{point_recovery}",
            )
    return report
