"""``stitch-lint``: static verification of programs, ISEs and plans.

Four passes, none of which simulates anything:

* **program lint** (``V1xx``) — CFG/liveness checks over assembled
  programs, including the streaming register conventions,
* **ISE checks** (``V2xx``) — custom-instruction port budgets,
  convexity, 19-bit encoding round-trips and constant-pool hygiene,
* **plan checks** (``V3xx``) — contention freedom, hop/delay budgets
  and SPM discipline of stitch plans,
* **MPI checks** (``V4xx``) — static deadlock detection over an app's
  blocking channel graph,
* **telemetry checks** (``V5xx``) — cycle-attribution cross-checks over
  measured runs (pure consistency checks; nothing simulated here),
* **report checks** (``V6xx``) — compile-provenance accounting: every
  enumerated ISE candidate selected or rejected-with-reason, and stitch
  plans consistent with the versions the compiler actually measured,
* **platform checks** (``V7xx``) — consistency of a
  :class:`repro.platform.PlatformConfig`: address-map overlaps, link
  vs. flit widths, cache geometry, and the cross-layer rule that the
  worst fused pair at the hop limit still fits the clock,
* **dataflow checks** (``V8xx``) — abstract interpretation (interval +
  definedness lattices over the CFG, :mod:`repro.verify.absint`)
  proving init-before-use, SPM bounds, 19-bit control-word limits,
  dead stores, semantic reachability and loop-bound existence; the
  ``--deep`` layer of ``repro verify``,
* **profile checks** (``V9xx``) — the PC-attribution profiler and the
  interval sampler reconciled against the simulator's own counters
  (``repro profile`` gates on these),
* **critpath checks** (``V10xx``) — the causal execution graph's two
  load-bearing invariants: the critical path reconciles exactly with
  the measured end-to-end cycles, and causality holds on every edge
  (``repro critpath`` gates on these),
* **chaos checks** (``V11xx``) — fault-injection campaign accounting:
  every planned fault triggered or untriggered, zero-fault plans
  bit-identical, outcomes a closed world consistent with their
  evidence, and recovery cycle totals reconciled (``repro chaos``
  gates on these).

Entry points: :func:`verify_source`, :func:`verify_kernel`,
:func:`verify_compiled`, :func:`verify_plan`, :func:`verify_app`;
``python -m repro verify`` exposes them on the command line.
"""

from repro.verify.diagnostics import (
    RULES,
    Diagnostic,
    Report,
    Rule,
    Severity,
    VerificationError,
    register_rule,
)
from repro.verify.api import (
    require_clean,
    verify_app,
    verify_compiled,
    verify_kernel,
    verify_plan,
    verify_source,
)
from repro.verify.chaos_checks import check_campaign
from repro.verify.critpath_checks import (
    check_critpath,
    check_critpath_capture,
)
from repro.verify.dataflow_checks import check_dataflow
from repro.verify.ise_checks import check_ises
from repro.verify.mpi_checks import check_app_channels
from repro.verify.plan_checks import check_plan
from repro.verify.platform_checks import check_platform
from repro.verify.profile_checks import (
    check_profile,
    check_profile_run,
    check_timeseries,
)
from repro.verify.program_lint import lint_program
from repro.verify.report_checks import (
    check_compile_report,
    check_report_against_plan,
)
from repro.verify.telemetry_checks import (
    check_core,
    check_cycle_attribution,
    check_run,
)

__all__ = [
    "RULES",
    "Diagnostic",
    "Report",
    "Rule",
    "Severity",
    "VerificationError",
    "register_rule",
    "require_clean",
    "verify_app",
    "verify_compiled",
    "verify_kernel",
    "verify_plan",
    "verify_source",
    "check_campaign",
    "check_critpath",
    "check_critpath_capture",
    "check_dataflow",
    "check_ises",
    "check_app_channels",
    "check_plan",
    "check_platform",
    "check_compile_report",
    "check_core",
    "check_profile",
    "check_profile_run",
    "check_timeseries",
    "check_cycle_attribution",
    "check_report_against_plan",
    "check_run",
    "lint_program",
]
