"""Parameter groups of one simulated machine.

Each group is a small frozen dataclass covering one layer of the
platform — core, memory, inter-core NoC, inter-patch fabric, power —
and :class:`repro.platform.config.PlatformConfig` composes the five
into a validated whole.  The actual Table II / Table IV numbers appear
*only* in the named presets (:meth:`PlatformConfig.stitch` /
:meth:`PlatformConfig.baseline`); every other module reads them from a
config instance (or from the re-exported preset-derived aliases kept
for backward compatibility).

This package is a leaf: it imports nothing from the rest of ``repro``
so every layer may depend on it without cycles.
"""

import dataclasses
from dataclasses import dataclass


class PlatformConfigError(ValueError):
    """An inconsistent or non-physical platform description.

    ``issues`` lists ``(code, loc, message)`` tuples using the V700+
    stitch-lint vocabulary (see :mod:`repro.verify.platform_checks`).
    """

    def __init__(self, issues):
        self.issues = list(issues)
        lines = [f"{code} @ {loc}: {message}" for code, loc, message in self.issues]
        super().__init__(
            "invalid platform configuration:\n  " + "\n  ".join(lines)
        )


@dataclass(frozen=True)
class CoreParams:
    """The in-order core's micro-architectural knobs."""

    num_regs: int
    taken_branch_penalty: int


@dataclass(frozen=True)
class MemParams:
    """One tile's private memory system (Table II geometry)."""

    icache_bytes: int
    dcache_bytes: int
    cache_assoc: int
    cache_line_bytes: int
    cache_hit_latency: int
    spm_base: int
    spm_bytes: int
    spm_latency: int
    dram_latency: int
    dram_size_bytes: int
    code_base: int
    code_window_bytes: int

    @property
    def has_spm(self):
        return self.spm_bytes > 0

    @property
    def spm_end(self):
        return self.spm_base + self.spm_bytes


@dataclass(frozen=True)
class NoCParams:
    """The inter-core packet-switched mesh (Table II timing)."""

    mesh_width: int
    mesh_height: int
    router_stages: int
    link_cycles: int
    flit_bytes: int
    payload_flits_per_packet: int

    @property
    def num_tiles(self):
        return self.mesh_width * self.mesh_height

    @property
    def words_per_flit(self):
        return self.flit_bytes // 4

    @property
    def max_words_per_packet(self):
        return self.payload_flits_per_packet * self.words_per_flit


@dataclass(frozen=True)
class FabricParams:
    """The inter-patch stitching fabric (Table IV delays + hop limit)."""

    switch_delay_ns: float
    wire_delay_per_hop_ns: float
    clock_ns: float
    max_fusion_hops: int
    link_data_bits: int
    link_control_bits: int
    switch_area_um2: int

    @property
    def link_bits(self):
        return self.link_data_bits + self.link_control_bits

    @property
    def max_path_traversals(self):
        """Round-trip link traversals of the longest legal path."""
        return 2 * self.max_fusion_hops

    @property
    def clock_mhz(self):
        return 1e3 / self.clock_ns


@dataclass(frozen=True)
class PowerParams:
    """Chip-level power anchors (Table I / Figure 13)."""

    clock_mhz: int
    stitch_power_mw: float
    nofusion_power_mw: float
    accel_power_fraction: float
    accel_area_fraction: float


PARAM_GROUPS = {
    "core": CoreParams,
    "mem": MemParams,
    "noc": NoCParams,
    "fabric": FabricParams,
    "power": PowerParams,
}


def group_to_dict(params):
    return dataclasses.asdict(params)


def group_from_dict(cls, payload, base=None, loc="platform"):
    """Build a parameter group from a dict, overlaying ``base``.

    Unknown keys are rejected (a typoed knob must not silently fall
    back to the preset value).  Missing keys take the ``base`` value;
    with no base, every field is required.
    """
    fields = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(payload) - fields)
    if unknown:
        raise PlatformConfigError(
            [("V706", loc, f"unknown {cls.__name__} field(s): {', '.join(unknown)}")]
        )
    if base is not None:
        return dataclasses.replace(base, **payload)
    missing = sorted(fields - set(payload))
    if missing:
        raise PlatformConfigError(
            [("V706", loc, f"missing {cls.__name__} field(s): {', '.join(missing)}")]
        )
    return cls(**payload)
