"""Unified platform configuration: one object describes one machine.

The Table II / Table IV numbers the reproduction used to scatter as
module constants live here, in the :meth:`PlatformConfig.stitch` and
:meth:`PlatformConfig.baseline` presets.  ``DEFAULT_PLATFORM`` (the
stitch preset) backs the derived compatibility aliases the memory, NoC
and inter-patch layers still re-export.
"""

from repro.platform.params import (
    CoreParams,
    FabricParams,
    MemParams,
    NoCParams,
    PARAM_GROUPS,
    PlatformConfigError,
    PowerParams,
)
from repro.platform.config import (
    PRESET_NAMES,
    PlatformConfig,
    get_preset,
)

DEFAULT_PLATFORM = PlatformConfig.stitch()

__all__ = [
    "CoreParams",
    "MemParams",
    "NoCParams",
    "FabricParams",
    "PowerParams",
    "PARAM_GROUPS",
    "PlatformConfig",
    "PlatformConfigError",
    "DEFAULT_PLATFORM",
    "PRESET_NAMES",
    "get_preset",
]
