"""The composed, validated :class:`PlatformConfig` and its presets.

Every hardware number of the reproduction — Table II tile memories,
Table IV fabric delays, the NoC pipeline, the 16-tile mesh — lives in
exactly two places: the :meth:`PlatformConfig.stitch` preset and the
:meth:`PlatformConfig.baseline` preset derived from it (Section VI-B:
the baseline folds the SPM budget back into the data cache).  Each
simulator layer receives its parameter group from a config instance,
so a sweep can fan out over whole *families* of machines by deriving
variants::

    cfg = PlatformConfig.stitch().derive(
        "dram50", mem={"dram_latency": 50})

Configs round-trip through JSON (:meth:`to_dict` / :meth:`from_dict`)
and are validated for internal consistency (:meth:`validate`, the
stitch-lint V700+ family).
"""

import dataclasses

from repro.platform.params import (
    CoreParams,
    FabricParams,
    MemParams,
    NoCParams,
    PARAM_GROUPS,
    PlatformConfigError,
    PowerParams,
    group_from_dict,
    group_to_dict,
)


def _is_pow2(value):
    return value > 0 and value & (value - 1) == 0


_PRESET_CACHE = {}


@dataclasses.dataclass(frozen=True)
class PlatformConfig:
    """One complete machine description (immutable, hashable)."""

    name: str
    core: CoreParams
    mem: MemParams
    noc: NoCParams
    fabric: FabricParams
    power: PowerParams

    # -- presets -------------------------------------------------------------

    @classmethod
    def stitch(cls):
        """The paper's machine: Table II tiles on a 4x4 mesh.

        This preset (and :meth:`baseline`, derived from it) is the
        single place the paper's hardware numbers are written down.
        """
        cached = _PRESET_CACHE.get("stitch")
        if cached is None:
            cached = cls(
                name="stitch",
                core=CoreParams(
                    num_regs=16,
                    taken_branch_penalty=1,
                ),
                mem=MemParams(               # Table II / Section III-C
                    icache_bytes=8 * 1024,
                    dcache_bytes=4 * 1024,
                    cache_assoc=2,
                    cache_line_bytes=64,
                    cache_hit_latency=1,
                    spm_base=0x1000_0000,
                    spm_bytes=4 * 1024,
                    spm_latency=1,
                    dram_latency=30,
                    dram_size_bytes=512 * 1024 * 1024,
                    code_base=0x0800_0000,
                    code_window_bytes=1024 * 1024,
                ),
                noc=NoCParams(               # Table II NoC row
                    mesh_width=4,
                    mesh_height=4,
                    router_stages=5,
                    link_cycles=1,
                    flit_bytes=16,
                    payload_flits_per_packet=4,
                ),
                fabric=FabricParams(         # Table IV / Section VI-D (40 nm)
                    switch_delay_ns=0.17,
                    wire_delay_per_hop_ns=0.1,
                    clock_ns=5.0,            # 200 MHz
                    max_fusion_hops=3,       # <= 6 traversals round trip
                    link_data_bits=4 * 32,   # four operand words
                    link_control_bits=38,    # two 19-bit patch configs
                    switch_area_um2=7423,
                ),
                power=PowerParams(           # Table I / Figure 13
                    clock_mhz=200,
                    stitch_power_mw=139.5,
                    nofusion_power_mw=108.0,
                    accel_power_fraction=0.23,
                    accel_area_fraction=0.005,
                ),
            )
            _PRESET_CACHE["stitch"] = cached
        return cached

    @classmethod
    def baseline(cls):
        """The no-accelerator baseline: SPM budget folded into the D$."""
        cached = _PRESET_CACHE.get("baseline")
        if cached is None:
            cached = cls.stitch().derive(
                "baseline",
                mem={"dcache_bytes": 8 * 1024, "spm_bytes": 0},
            )
            _PRESET_CACHE["baseline"] = cached
        return cached

    # -- derivation ----------------------------------------------------------

    def derive(self, name=None, **group_updates):
        """A new config with per-group field overrides.

        ``cfg.derive("big", noc={"mesh_width": 8, "mesh_height": 8})``
        replaces fields inside a group; groups not named are shared.
        """
        unknown = sorted(set(group_updates) - set(PARAM_GROUPS))
        if unknown:
            raise PlatformConfigError(
                [("V706", self.name,
                  f"unknown parameter group(s): {', '.join(unknown)}")]
            )
        changes = {"name": name if name is not None else self.name}
        for group, updates in group_updates.items():
            changes[group] = group_from_dict(
                PARAM_GROUPS[group], updates,
                base=getattr(self, group), loc=f"{self.name}.{group}",
            )
        return dataclasses.replace(self, **changes)

    # -- serialization -------------------------------------------------------

    def to_dict(self):
        payload = {"name": self.name}
        for group in PARAM_GROUPS:
            payload[group] = group_to_dict(getattr(self, group))
        return payload

    @classmethod
    def from_dict(cls, payload, validate=True):
        """Rebuild a config from :meth:`to_dict` output.

        Partial dicts overlay the ``stitch`` preset (so a config JSON
        only needs the knobs it changes); unknown groups or fields are
        rejected rather than ignored.
        """
        payload = dict(payload)
        name = payload.pop("name", "custom")
        base_name = payload.pop("base", "stitch")
        base = get_preset(base_name)
        unknown = sorted(set(payload) - set(PARAM_GROUPS))
        if unknown:
            raise PlatformConfigError(
                [("V706", name,
                  f"unknown parameter group(s): {', '.join(unknown)}")]
            )
        config = base.derive(name, **payload)
        if validate:
            config.validate()
        return config

    def cache_key(self):
        """A stable hashable identity (compile caches key on this)."""
        def flatten(value, prefix):
            if isinstance(value, dict):
                for key in sorted(value):
                    yield from flatten(value[key], f"{prefix}.{key}")
            else:
                yield (prefix, value)
        return tuple(flatten(self.to_dict(), "platform"))

    # -- validation ----------------------------------------------------------

    def issues(self):
        """Config-consistency findings as ``(code, loc, message)``.

        These are the pure-config half of the stitch-lint V700 family;
        :func:`repro.verify.platform_checks.check_platform` adds the
        cross-layer checks that need the patch library.
        """
        found = []
        mem, noc, fabric = self.mem, self.noc, self.fabric
        loc = self.name

        # V700: the SPM window must not overlap the code window.
        if mem.spm_bytes > 0:
            code_end = mem.code_base + mem.code_window_bytes
            if mem.spm_base < code_end and mem.code_base < mem.spm_end:
                found.append((
                    "V700", f"{loc}.mem",
                    f"SPM window [{mem.spm_base:#x}, {mem.spm_end:#x}) "
                    f"overlaps the code window [{mem.code_base:#x}, "
                    f"{code_end:#x})",
                ))

        # V701: the inter-patch link must carry whole NoC flits.
        if fabric.link_data_bits != noc.flit_bytes * 8:
            found.append((
                "V701", f"{loc}.fabric",
                f"inter-patch link carries {fabric.link_data_bits} data "
                f"bits but a NoC flit is {noc.flit_bytes * 8} bits",
            ))

        # V702: cache geometry must be realizable.
        for label, size in (("icache", mem.icache_bytes),
                            ("dcache", mem.dcache_bytes)):
            if size <= 0:
                continue  # a cacheless tile is legal (baseline has SPM=0)
            if not (_is_pow2(size) and _is_pow2(mem.cache_assoc)
                    and _is_pow2(mem.cache_line_bytes)):
                found.append((
                    "V702", f"{loc}.mem.{label}",
                    f"{label} geometry must be powers of two "
                    f"({size}B, {mem.cache_assoc}-way, "
                    f"{mem.cache_line_bytes}B lines)",
                ))
            elif size % (mem.cache_assoc * mem.cache_line_bytes) != 0:
                found.append((
                    "V702", f"{loc}.mem.{label}",
                    f"{label} size {size}B is not a multiple of "
                    f"assoc x line ({mem.cache_assoc} x "
                    f"{mem.cache_line_bytes}B)",
                ))

        # V704: non-physical parameters.
        positive = (
            ("core.num_regs", self.core.num_regs),
            ("mem.cache_hit_latency", mem.cache_hit_latency),
            ("mem.dram_latency", mem.dram_latency),
            ("noc.mesh_width", noc.mesh_width),
            ("noc.mesh_height", noc.mesh_height),
            ("noc.router_stages", noc.router_stages),
            ("noc.link_cycles", noc.link_cycles),
            ("noc.flit_bytes", noc.flit_bytes),
            ("noc.payload_flits_per_packet", noc.payload_flits_per_packet),
            ("fabric.clock_ns", fabric.clock_ns),
            ("fabric.max_fusion_hops", fabric.max_fusion_hops),
        )
        for field, value in positive:
            if value < 1:
                found.append((
                    "V704", f"{loc}.{field}",
                    f"{field} must be >= 1, got {value}",
                ))
        if self.core.taken_branch_penalty < 0:
            found.append((
                "V704", f"{loc}.core.taken_branch_penalty",
                "taken_branch_penalty must be >= 0",
            ))
        if mem.spm_bytes > 0 and mem.spm_latency < 1:
            found.append((
                "V704", f"{loc}.mem.spm_latency",
                f"spm_latency must be >= 1, got {mem.spm_latency}",
            ))

        # V705: word alignment of the address map.
        for field, value in (("mem.spm_base", mem.spm_base),
                             ("mem.code_base", mem.code_base)):
            if value % 4 != 0:
                found.append((
                    "V705", f"{loc}.{field}",
                    f"{field} {value:#x} is not word-aligned",
                ))
        if mem.spm_bytes % 4 != 0:
            found.append((
                "V705", f"{loc}.mem.spm_bytes",
                f"spm_bytes {mem.spm_bytes} is not a whole number of words",
            ))
        if noc.flit_bytes % 4 != 0:
            found.append((
                "V705", f"{loc}.noc.flit_bytes",
                f"flit_bytes {noc.flit_bytes} is not a whole number of words",
            ))
        return found

    def validate(self):
        """Raise :class:`PlatformConfigError` unless consistent."""
        found = self.issues()
        if found:
            raise PlatformConfigError(found)
        return self

    def describe(self):
        """One human line per group (the sweep runner's log format)."""
        mem, noc = self.mem, self.noc
        spm = f"{mem.spm_bytes // 1024} KB SPM" if mem.has_spm else "no SPM"
        return (
            f"{self.name}: {noc.mesh_width}x{noc.mesh_height} mesh, "
            f"{mem.icache_bytes // 1024} KB I$ / "
            f"{mem.dcache_bytes // 1024} KB D$ / {spm}, "
            f"DRAM {mem.dram_latency} cy, "
            f"{self.fabric.clock_mhz:.0f} MHz"
        )


def get_preset(name):
    """Resolve a named preset ("stitch" | "baseline")."""
    presets = {"stitch": PlatformConfig.stitch,
               "baseline": PlatformConfig.baseline}
    factory = presets.get(name)
    if factory is None:
        raise PlatformConfigError(
            [("V706", name,
              f"unknown platform preset; choose from {sorted(presets)}")]
        )
    return factory()


PRESET_NAMES = ("stitch", "baseline")
