"""Per-tile memory system: I-cache, D-cache, SPM and DRAM composed.

Two configurations are used by the evaluation:

* **stitch tile** — 8 KB I$, 4 KB D$, 4 KB SPM (Table II), and
* **baseline tile** — 8 KB I$, 8 KB D$, no SPM (Section VI-B: the
  baseline converts the SPM budget back into data cache).

Code lives in a dedicated window so instruction fetches exercise the
I-cache without colliding with data lines.
"""

import dataclasses

from repro.mem.cache import Cache
from repro.mem.dram import Dram
from repro.mem.spm import Scratchpad
from repro.platform import DEFAULT_PLATFORM, PlatformConfig

# Derived compatibility alias — the number lives in repro.platform.
CODE_BASE = DEFAULT_PLATFORM.mem.code_base

_FIELD_FOR_KWARG = {
    "icache_bytes": "icache_bytes",
    "dcache_bytes": "dcache_bytes",
    "assoc": "cache_assoc",
    "line_bytes": "cache_line_bytes",
    "spm_bytes": "spm_bytes",
    "spm_base": "spm_base",
    "dram_latency": "dram_latency",
}


class MemorySystem:
    """Timing + contents for one tile's private memory.

    Geometry comes from a :class:`repro.platform.MemParams`; the legacy
    keyword arguments (``dcache_bytes=...``) still work as overrides on
    top of the stitch preset.
    """

    def __init__(self, params=None, **overrides):
        if params is None:
            params = DEFAULT_PLATFORM.mem
        if overrides:
            unknown = sorted(set(overrides) - set(_FIELD_FOR_KWARG))
            if unknown:
                raise TypeError(f"unknown MemorySystem argument(s): {unknown}")
            params = dataclasses.replace(
                params,
                **{_FIELD_FOR_KWARG[k]: v for k, v in overrides.items()},
            )
        self.params = params
        self.code_base = params.code_base
        self.icache = Cache(
            params.icache_bytes, params.cache_assoc, params.cache_line_bytes,
            hit_latency=params.cache_hit_latency, name="icache",
        )
        self.dcache = Cache(
            params.dcache_bytes, params.cache_assoc, params.cache_line_bytes,
            hit_latency=params.cache_hit_latency, name="dcache",
        )
        self.spm = (
            Scratchpad(params.spm_base, params.spm_bytes,
                       latency=params.spm_latency)
            if params.spm_bytes else None
        )
        self.dram = Dram(size_bytes=params.dram_size_bytes,
                         latency=params.dram_latency)

    @classmethod
    def from_params(cls, params):
        """Build the memory system one :class:`MemParams` describes."""
        return cls(params)

    @classmethod
    def baseline(cls):
        """Baseline tile: SPM budget folded back into the D-cache."""
        return cls(PlatformConfig.baseline().mem)

    @classmethod
    def stitch(cls):
        """Stitch tile per Table II."""
        return cls(PlatformConfig.stitch().mem)

    def is_spm(self, addr):
        return self.spm is not None and self.spm.contains(addr)

    # -- data path ----------------------------------------------------------

    def read(self, addr):
        """Data read; returns ``(value, cycles)``."""
        if self.spm is not None and self.spm.contains(addr):
            return self.spm.read_word(addr), self.spm.latency
        hit, writeback = self.dcache.lookup(addr, write=False)
        cycles = self.dcache.hit_latency
        if not hit:
            cycles += self.dram.latency
        if writeback:
            cycles += self.dram.latency
        return self.dram.read_word(addr), cycles

    def write(self, addr, value):
        """Data write; returns cycles."""
        if self.spm is not None and self.spm.contains(addr):
            self.spm.write_word(addr, value)
            return self.spm.latency
        hit, writeback = self.dcache.lookup(addr, write=True)
        cycles = self.dcache.hit_latency
        if not hit:
            cycles += self.dram.latency  # write-allocate fill
        if writeback:
            cycles += self.dram.latency
        self.dram.write_word(addr, value)  # backing store kept consistent
        return cycles

    def spm_read(self, addr):
        """LMAU-path SPM read (used inside custom instructions)."""
        if self.spm is None:
            raise RuntimeError("this tile has no scratchpad")
        return self.spm.read_word(addr)

    def spm_write(self, addr, value):
        """LMAU-path SPM write (used inside custom instructions)."""
        if self.spm is None:
            raise RuntimeError("this tile has no scratchpad")
        self.spm.write_word(addr, value)

    # -- instruction fetch ----------------------------------------------------

    def code_fully_cacheable(self, num_words):
        """True when a ``num_words``-word code image can never be
        evicted from the I-cache.

        The licence for the execution engine's memoized resident-line
        fetch path: once this holds, any line :meth:`fetch` has filled
        stays resident for the rest of the simulation, so later fetches
        of the same slot may charge the all-hit cost (crediting the hit
        counters) without touching the cache model.  Geometry argument
        in :func:`repro.isa.decoded.code_fully_cacheable`.
        """
        from repro.isa.decoded import code_fully_cacheable

        return code_fully_cacheable(num_words, self.params)

    def fetch(self, instruction_index, words=1):
        """Fetch timing for the instruction at ``instruction_index``.

        Multi-word encodings (movi/cix) fetch each word; sequential words
        almost always share a line so the extra cost is one cycle.
        """
        cycles = 0
        byte_addr = self.code_base + instruction_index * 4
        for word in range(words):
            hit, _ = self.icache.lookup(byte_addr + word * 4, write=False)
            cycles += self.icache.hit_latency
            if not hit:
                cycles += self.dram.latency
        return cycles

    # -- harness helpers ------------------------------------------------------

    def load(self, addr, values):
        """Place data (list of ints) at ``addr`` — SPM or DRAM — untimed."""
        if self.is_spm(addr):
            self.spm.load_words(addr, values)
        else:
            self.dram.load_words(addr, values)

    def dump(self, addr, count):
        """Read ``count`` words at ``addr`` untimed."""
        if self.is_spm(addr):
            return self.spm.dump_words(addr, count)
        return self.dram.dump_words(addr, count)

    def stats(self):
        """Per-level counter aggregation of this tile's caches."""
        return {"icache": self.icache.stats(), "dcache": self.dcache.stats()}

    def counter_snapshot(self):
        """``(icache hits, icache misses, dcache hits, dcache misses)``.

        The raw cumulative counters, cheap enough to read every
        sampling interval — the time-series collector diffs successive
        snapshots into per-interval hit-rate deltas.
        """
        return (self.icache.hits, self.icache.misses,
                self.dcache.hits, self.dcache.misses)

    def reset_stats(self):
        """Zero both caches' counters (tag/LRU state is untouched).

        :meth:`StitchSystem.run` snapshots these counters at run start
        so per-run hit rates stay correct across repeated runs even
        without an explicit reset.
        """
        self.icache.reset_stats()
        self.dcache.reset_stats()
