"""Set-associative write-back, write-allocate cache timing model.

Contents live in the tile's private DRAM model (always locally
consistent — single core, no sharing), so the cache tracks only tags,
dirty bits and LRU order and returns the cycle cost of each access.
"""


def _is_pow2(value):
    return value > 0 and value & (value - 1) == 0


class Cache:
    """LRU set-associative cache.

    Parameters mirror Table II: ``size_bytes`` total capacity,
    ``assoc`` ways, ``line_bytes`` block size, ``hit_latency`` cycles.
    """

    def __init__(self, size_bytes, assoc, line_bytes=64, hit_latency=1, name="cache"):
        if not (_is_pow2(size_bytes) and _is_pow2(assoc) and _is_pow2(line_bytes)):
            raise ValueError("cache geometry must be powers of two")
        if size_bytes % (assoc * line_bytes) != 0:
            raise ValueError("size must be a multiple of assoc * line size")
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.line_bytes = line_bytes
        self.hit_latency = hit_latency
        self.name = name
        self.num_sets = size_bytes // (assoc * line_bytes)
        self._set_mask = self.num_sets - 1
        self._line_shift = line_bytes.bit_length() - 1
        # Each set: list of [tag, dirty] in LRU order (front = LRU).
        self._sets = [[] for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    def lookup(self, addr, write=False):
        """Access ``addr``; returns ``(hit, writeback)``.

        ``writeback`` is True when the miss evicted a dirty line (costing
        an extra DRAM write in the hierarchy's timing model).
        """
        line = addr >> self._line_shift
        set_index = line & self._set_mask
        tag = line >> (self.num_sets.bit_length() - 1)
        ways = self._sets[set_index]
        for position, entry in enumerate(ways):
            if entry[0] == tag:
                ways.append(ways.pop(position))  # move to MRU
                if write:
                    entry[1] = True
                self.hits += 1
                return True, False
        self.misses += 1
        writeback = False
        if len(ways) >= self.assoc:
            victim = ways.pop(0)
            if victim[1]:
                writeback = True
                self.writebacks += 1
        ways.append([tag, write])
        return False, writeback

    def flush(self):
        """Invalidate everything (no timing charged)."""
        self._sets = [[] for _ in range(self.num_sets)]

    def reset_stats(self):
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    def stats(self):
        """Counter snapshot (feeds :meth:`MemorySystem.stats`)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writebacks": self.writebacks,
            "accesses": self.accesses,
            "hit_rate": self.hit_rate(),
        }

    @property
    def accesses(self):
        return self.hits + self.misses

    def hit_rate(self):
        total = self.accesses
        return self.hits / total if total else 1.0

    def __repr__(self):
        return (
            f"Cache({self.name}: {self.size_bytes}B {self.assoc}-way "
            f"{self.line_bytes}B-line, {self.num_sets} sets)"
        )
