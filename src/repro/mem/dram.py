"""Sparse word-granular DRAM model (per-tile private main memory)."""

from repro.isa.instructions import wrap32
from repro.platform import DEFAULT_PLATFORM

# Derived compatibility aliases — the numbers themselves live in
# repro.platform's presets (single source of truth).
DRAM_LATENCY = DEFAULT_PLATFORM.mem.dram_latency
DRAM_SIZE = DEFAULT_PLATFORM.mem.dram_size_bytes


class Dram:
    """Private per-tile main memory.

    Storage is a sparse ``{word index: value}`` map so a 512 MB space
    costs only what a program touches.  Values are signed 32-bit ints.
    """

    def __init__(self, size_bytes=DRAM_SIZE, latency=DRAM_LATENCY):
        self.size_bytes = size_bytes
        self.latency = latency
        self._words = {}
        self.reads = 0
        self.writes = 0

    def _check(self, addr):
        if addr % 4 != 0:
            raise ValueError(f"unaligned word access at {addr:#x}")
        if not 0 <= addr < self.size_bytes:
            raise ValueError(f"DRAM address out of range: {addr:#x}")

    def read_word(self, addr):
        self._check(addr)
        self.reads += 1
        return self._words.get(addr >> 2, 0)

    def write_word(self, addr, value):
        self._check(addr)
        self.writes += 1
        self._words[addr >> 2] = wrap32(value)

    def load_words(self, addr, values):
        """Bulk-initialize memory (harness use; no timing charged)."""
        self._check(addr)
        base = addr >> 2
        for offset, value in enumerate(values):
            self._words[base + offset] = wrap32(value)

    def dump_words(self, addr, count):
        """Bulk-read memory (harness use; no timing charged)."""
        self._check(addr)
        base = addr >> 2
        return [self._words.get(base + i, 0) for i in range(count)]

    def footprint_words(self):
        return len(self._words)
