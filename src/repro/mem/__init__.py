"""Memory hierarchy substrate.

Per tile (Table II of the paper): a 2-way 8 KB instruction cache and
2-way 4 KB data cache with 64-byte blocks and LRU replacement, a 4 KB
scratchpad memory (SPM) with 1-cycle access reachable by both the CPU
and the patch LMAU, and a 512 MB DRAM with 30-cycle access latency.

Stitch is message passing: each tile owns a private memory space, so
caches act as timing filters over an always-consistent local backing
store and no coherence machinery is needed (Section III-C).
"""

from repro.mem.cache import Cache
from repro.mem.dram import Dram, DRAM_LATENCY
from repro.mem.spm import Scratchpad, SPM_BASE, SPM_SIZE
from repro.mem.hierarchy import MemorySystem

__all__ = [
    "Cache",
    "Dram",
    "DRAM_LATENCY",
    "Scratchpad",
    "SPM_BASE",
    "SPM_SIZE",
    "MemorySystem",
]
