"""Scratchpad memory (SPM).

The SPM extends the main-memory address space (Section III-C): a fixed
uncacheable window with 1-cycle access, reachable both from the CPU
load/store path and from the patch LMAU during custom-instruction
execution.  Address spaces of different tiles' SPMs are disjoint; each
core may touch only its own, which the tile enforces.
"""

from repro.isa.instructions import wrap32
from repro.platform import DEFAULT_PLATFORM

# Derived compatibility aliases — the numbers themselves live in
# repro.platform's presets (single source of truth).
SPM_BASE = DEFAULT_PLATFORM.mem.spm_base
SPM_SIZE = DEFAULT_PLATFORM.mem.spm_bytes
SPM_LATENCY = DEFAULT_PLATFORM.mem.spm_latency


class Scratchpad:
    """Word-granular scratchpad with bounds checking."""

    def __init__(self, base=SPM_BASE, size_bytes=SPM_SIZE, latency=SPM_LATENCY):
        if size_bytes % 4 != 0:
            raise ValueError("SPM size must be a whole number of words")
        self.base = base
        self.size_bytes = size_bytes
        self.latency = latency
        self._words = [0] * (size_bytes // 4)
        self.reads = 0
        self.writes = 0

    def contains(self, addr):
        return self.base <= addr < self.base + self.size_bytes

    def window(self):
        """``(words, base, end, latency)`` — the direct-access surface.

        ``words`` is the backing word list itself (not a copy): an
        execution engine holding the tuple may serve aligned accesses
        inside ``[base, end)`` with one list index instead of the
        checked :meth:`read_word`/:meth:`write_word` path, provided it
        mirrors the ``reads``/``writes`` counters and stores wrapped
        32-bit values (what :func:`~repro.isa.instructions.wrap32`
        produces).  Anything unaligned or out of window must fall back
        to the checked path so error behaviour is unchanged.
        """
        return self._words, self.base, self.base + self.size_bytes, self.latency

    def _index(self, addr):
        if addr % 4 != 0:
            raise ValueError(f"unaligned SPM access at {addr:#x}")
        if not self.contains(addr):
            raise ValueError(f"address {addr:#x} outside SPM window")
        return (addr - self.base) >> 2

    def read_word(self, addr):
        self.reads += 1
        return self._words[self._index(addr)]

    def write_word(self, addr, value):
        self.writes += 1
        self._words[self._index(addr)] = wrap32(value)

    def load_words(self, addr, values):
        """Bulk-initialize (harness use; no timing charged)."""
        index = self._index(addr)
        if index + len(values) > len(self._words):
            raise ValueError("data does not fit in the SPM")
        for offset, value in enumerate(values):
            self._words[index + offset] = wrap32(value)

    def dump_words(self, addr, count):
        """Bulk-read (harness use; no timing charged)."""
        index = self._index(addr)
        return list(self._words[index:index + count])

    def clear(self):
        self._words = [0] * (self.size_bytes // 4)
