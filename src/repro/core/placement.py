"""Patch placement across the 16 tiles.

Section III-A derives the patch mix from the op-chain study: {AT} is
needed everywhere, {MA} by half the cores, {AS} and {SA} by a quarter
each — 8 {AT-MA}, 4 {AT-AS} and 4 {AT-SA} patches.  The default layout
below interleaves the types so that any tile has every patch type
within the 3-hop fusion radius, and places {AT-AS} on tiles 2 and 10
with tile 6 between them, reproducing the stitching example of
Figure 5 (patch2 + patch10 fused, patch6 bypassed).
"""

from repro.core.patches import AT_AS, AT_MA, AT_SA, PATCH_TYPES
from repro.noc.topology import Mesh

# Paper tile numbering 1..16 (row-major from the top-left corner).
_DEFAULT_LAYOUT = (
    AT_MA, AT_AS, AT_MA, AT_SA,
    AT_MA, AT_MA, AT_SA, AT_AS,
    AT_MA, AT_AS, AT_MA, AT_SA,
    AT_MA, AT_MA, AT_SA, AT_AS,
)


def default_layout(mesh):
    """The paper's 8/4/4 pattern tiled periodically over any mesh.

    On the 4x4 mesh this is exactly the paper's layout; larger meshes
    repeat it so every tile still has each patch type within the fusion
    radius, smaller meshes take the top-left corner.
    """
    layout = []
    for tile in range(mesh.num_tiles):
        x, y = mesh.coords(tile)
        layout.append(_DEFAULT_LAYOUT[(y % 4) * 4 + (x % 4)])
    return tuple(layout)


class Placement:
    """Mapping of tiles (0-indexed) to patch types on a mesh."""

    def __init__(self, layout=None, mesh=None):
        self.mesh = mesh if mesh is not None else Mesh()
        layout = tuple(layout) if layout is not None else default_layout(self.mesh)
        if len(layout) != self.mesh.num_tiles:
            raise ValueError(
                f"layout names {len(layout)} patches for "
                f"{self.mesh.num_tiles} tiles"
            )
        self.layout = layout

    def type_of(self, tile):
        return self.layout[tile]

    def tiles_of(self, ptype):
        return [tile for tile, p in enumerate(self.layout) if p == ptype]

    def counts(self):
        """Patch-type histogram, e.g. {'AT-MA': 8, 'AT-AS': 4, 'AT-SA': 4}."""
        result = {name: 0 for name in PATCH_TYPES}
        for ptype in self.layout:
            result[ptype.name] += 1
        return result

    def hops(self, tile_a, tile_b):
        return self.mesh.hop_count(tile_a, tile_b)

    @classmethod
    def homogeneous(cls, ptype, mesh=None):
        """Ablation: every tile carries the same patch type."""
        mesh = mesh if mesh is not None else Mesh()
        return cls(tuple([ptype] * mesh.num_tiles), mesh)

    def __repr__(self):
        rows = []
        for y in range(self.mesh.height):
            row = [
                self.layout[self.mesh.tile_at(x, y)].name
                for x in range(self.mesh.width)
            ]
            rows.append(" ".join(f"{name:>5}" for name in row))
        return "Placement(\n  " + "\n  ".join(rows) + "\n)"


DEFAULT_PLACEMENT = Placement()
