"""Functional single-cycle execution of configured patches.

The executor is the tile's :class:`~repro.cpu.PatchPort`.  A ``cix``
instruction names an entry of the program's configuration table; the
executor evaluates the configured chain — sharing the exact value
semantics of the CPU interpreter via :func:`repro.isa.eval_alu` and
friends — and performs any LMAU scratchpad traffic inside the same
cycle (Section III-C).
"""

from repro.core.config import TMode
from repro.core.fusion import FusedConfig
from repro.core.units import Source, UnitKind
from repro.cpu.core import PatchPort
from repro.isa.instructions import eval_alu, eval_mul, eval_shift


def _resolve(source, chain, ext):
    if source == Source.CHAIN:
        return chain
    return ext[Source.ext_index(source)]


def evaluate_patch(cfg, ext, memory):
    """Evaluate a single-patch configuration.

    ``ext`` is the 4-entry external operand list; ``memory`` provides
    the LMAU's scratchpad.  Returns ``(out0, out1)`` where ``out1`` is
    ``None`` unless both chain halves produced values.
    """
    chain = ext[0]
    half = None
    tail_active = False

    if cfg.u0 is not None:
        lhs = _resolve(cfg.u0.in1, chain, ext)
        rhs = _resolve(cfg.u0.in2, chain, ext)
        chain = eval_alu(cfg.u0.op, lhs, rhs)
        half = chain

    def compute(position, unit_cfg, chain):
        kind = cfg.ptype.unit(position).kind
        lhs = _resolve(unit_cfg.in1, chain, ext)
        rhs = _resolve(unit_cfg.in2, chain, ext)
        if kind is UnitKind.ALU:
            return eval_alu(unit_cfg.op, lhs, rhs)
        if kind is UnitKind.SHIFT:
            return eval_shift(unit_cfg.op, lhs, rhs)
        return eval_mul(unit_cfg.op, lhs, rhs)

    mode = cfg.t
    if mode is not TMode.OFF:
        if memory is None:
            raise RuntimeError("LMAU active but no scratchpad is reachable")
        if mode is TMode.LOAD:
            chain = memory.spm_read(chain & 0xFFFFFFFF)
        elif mode is TMode.STORE_DATA_CHAIN:
            memory.spm_write(ext[2] & 0xFFFFFFFF, chain)
        else:  # STORE_ADDR_CHAIN
            memory.spm_write(chain & 0xFFFFFFFF, ext[3])
            chain = ext[3]
        half = chain
    elif cfg.u1 is not None:
        chain = compute(1, cfg.u1, chain)
        half = chain

    for position, unit_cfg in ((2, cfg.u2), (3, cfg.u3)):
        if unit_cfg is None:
            continue
        chain = compute(position, unit_cfg, chain)
        tail_active = True

    out1 = half if (tail_active and half is not None) else None
    return chain, out1


def evaluate_fused(cfg, ext, memory_a, memory_b):
    """Evaluate a fused pair: A on the origin tile, B on the remote."""
    a_out0, a_out1 = evaluate_patch(cfg.cfg_a, ext, memory_a)
    produced = {
        "a_out0": a_out0,
        "a_out1": a_out1 if a_out1 is not None else 0,
    }
    ext_b = []
    for source in cfg.b_ext:
        if source in produced:
            ext_b.append(produced[source])
        else:
            ext_b.append(ext[Source.ext_index(source)])
    b_out0, b_out1 = evaluate_patch(cfg.cfg_b, ext_b, memory_b)
    produced["b_out0"] = b_out0
    produced["b_out1"] = b_out1 if b_out1 is not None else 0
    return tuple(produced[source] for source in cfg.outs)


class PatchExecutor(PatchPort):
    """PatchPort implementation bound to one tile.

    ``remote_memories`` maps tile index to that tile's memory system so
    a fused configuration's B half can reach its own scratchpad; the
    stitcher binds ``FusedConfig.remote_tile`` when placing the pair.
    """

    def __init__(self, cfg_table, memory, remote_memories=None,
                 replica_memory=None):
        self.cfg_table = list(cfg_table)
        self.memory = memory
        self.remote_memories = remote_memories or {}
        # Scratchpad standing in for "some remote tile holding a copy
        # of the replicated read-only regions" when the fused pair has
        # not been placed yet (single-kernel measurement).
        self.replica_memory = replica_memory
        self.executions = 0
        self.fused_executions = 0
        # Telemetry: invocations per config id, and how many fused
        # executions touched a *remote* tile's scratchpad via the
        # inter-patch path (the cross-SPM traffic Section IV argues for).
        self.config_counts = {}
        self.remote_spm_accesses = 0

    def execute(self, cfg_id, in_values):
        try:
            cfg = self.cfg_table[cfg_id]
        except IndexError:
            raise IndexError(
                f"cix names config {cfg_id} but the table has "
                f"{len(self.cfg_table)} entries"
            ) from None
        ext = list(in_values) + [0] * (4 - len(in_values))
        self.executions += 1
        self.config_counts[cfg_id] = self.config_counts.get(cfg_id, 0) + 1
        if isinstance(cfg, FusedConfig):
            self.fused_executions += 1
            if cfg.remote_tile is not None:
                memory_b = self.remote_memories.get(cfg.remote_tile)
            else:
                memory_b = self.replica_memory
            if memory_b is None and cfg.cfg_b.uses_lmau():
                raise RuntimeError(
                    "fused B half uses its LMAU but no remote scratchpad "
                    "is bound (was the pair stitched?)"
                )
            if cfg.remote_tile is not None and cfg.cfg_b.uses_lmau():
                self.remote_spm_accesses += 1
            outs = evaluate_fused(cfg, ext, self.memory, memory_b)
            return [out if out is not None else 0 for out in outs]
        out0, out1 = evaluate_patch(cfg, ext, self.memory)
        return [out0, out1 if out1 is not None else 0]

    def stats(self):
        """Invocation counters (feeds the SystemStats roll-up)."""
        return {
            "executions": self.executions,
            "fused_executions": self.fused_executions,
            "remote_spm_accesses": self.remote_spm_accesses,
            "per_config": dict(self.config_counts),
        }
