"""Fused-patch configurations and the single-cycle timing rule.

Two patches are stitched by configuring the inter-patch NoC so the
first patch's outputs are delivered to the second patch's operand
inputs, and the final results return to the origin tile's register
file, all within one clock (Section III-B).  The ns-level path model
reproduces the paper's critical-path arithmetic (Table IV)::

    delay = 3 x switch + delay(A) + delay(B)
            + 2 x hops x (wire + switch)

which gives 4.63 ns for {AT-MA, AT-AS} three hops apart — the chip's
critical path, setting the 200 MHz clock.
"""

from repro.core.config import PatchConfig
from repro.platform import DEFAULT_PLATFORM

# Table IV / Section VI-D numbers — derived compatibility aliases; the
# values themselves live in repro.platform's presets.
SWITCH_DELAY_NS = DEFAULT_PLATFORM.fabric.switch_delay_ns
WIRE_DELAY_PER_HOP_NS = DEFAULT_PLATFORM.fabric.wire_delay_per_hop_ns
CLOCK_NS = DEFAULT_PLATFORM.fabric.clock_ns          # 200 MHz
MAX_FUSION_HOPS = DEFAULT_PLATFORM.fabric.max_fusion_hops
# (Manhattan distance between stitched tiles; the operands traverse
# <= 2 * MAX_FUSION_HOPS link hops round trip — the paper's <= 6 rule.)

# Sources selectable for the fused pair's external wiring.
A_OUT0 = "a_out0"
A_OUT1 = "a_out1"
B_OUT0 = "b_out0"
B_OUT1 = "b_out1"
_B_EXT_CHOICES = ("ext0", "ext1", "ext2", "ext3", A_OUT0, A_OUT1)
_OUT_CHOICES = (A_OUT0, A_OUT1, B_OUT0, B_OUT1)


class FusionTiming:
    """Critical-path arithmetic for single and fused patches.

    The class attributes carry the stitch preset's fabric delays;
    :meth:`configured` derives a timing class for any other
    :class:`repro.platform.FabricParams` (every classmethod below works
    unchanged on the derived class).
    """

    switch_ns = SWITCH_DELAY_NS
    wire_ns = WIRE_DELAY_PER_HOP_NS
    clock_ns = CLOCK_NS

    @classmethod
    def configured(cls, fabric):
        """A timing class bound to another fabric's delays."""
        return type(
            f"FusionTiming_{id(fabric):x}", (cls,),
            {
                "switch_ns": fabric.switch_delay_ns,
                "wire_ns": fabric.wire_delay_per_hop_ns,
                "clock_ns": fabric.clock_ns,
            },
        )

    @classmethod
    def single_delay(cls, ptype):
        """Single patch incl. NoC overhead: 2 switch traversals."""
        return 2 * cls.switch_ns + ptype.delay_ns

    @classmethod
    def fused_delay(cls, ptype_a, ptype_b, hops):
        """Fused pair ``hops`` apart (each direction)."""
        if hops < 1:
            raise ValueError("fused patches must be at least one hop apart")
        transit = hops * (cls.wire_ns + cls.switch_ns)
        return 3 * cls.switch_ns + ptype_a.delay_ns + ptype_b.delay_ns + 2 * transit

    @classmethod
    def fits_single_cycle(cls, delay_ns):
        return delay_ns <= cls.clock_ns + 1e-9

    @classmethod
    def max_fused_delay(cls):
        """Worst delay over all type pairs at the hop limit."""
        from repro.core.patches import PATCH_TYPES

        return max(
            cls.fused_delay(a, b, MAX_FUSION_HOPS)
            for a in PATCH_TYPES.values()
            for b in PATCH_TYPES.values()
        )


class FusedConfig:
    """A validated fused-pair configuration.

    ``b_ext`` wires each of patch B's four external operand slots to an
    original operand (``ext0..3``) or to one of patch A's outputs.
    ``outs`` names the (up to two) values written back to the origin
    register file.  ``remote_tile`` is bound by the stitcher once the
    pair is placed.
    """

    def __init__(self, cfg_a, cfg_b, b_ext, outs, remote_tile=None):
        if not isinstance(cfg_a, PatchConfig) or not isinstance(cfg_b, PatchConfig):
            raise TypeError("fused halves must be PatchConfig instances")
        b_ext = tuple(b_ext)
        outs = tuple(outs)
        if len(b_ext) != 4:
            raise ValueError("b_ext must wire all four operand slots")
        for source in b_ext:
            if source not in _B_EXT_CHOICES:
                raise ValueError(f"illegal B operand source: {source}")
        if not 1 <= len(outs) <= 2:
            raise ValueError("a custom instruction writes one or two outputs")
        for source in outs:
            if source not in _OUT_CHOICES:
                raise ValueError(f"illegal output source: {source}")
        self.cfg_a = cfg_a
        self.cfg_b = cfg_b
        self.b_ext = b_ext
        self.outs = outs
        self.remote_tile = remote_tile

    def control_bits(self):
        """The 38-bit control word carried by the inter-patch link."""
        return self.cfg_a.encode() | (self.cfg_b.encode() << 19)

    def type_pair(self):
        return self.cfg_a.ptype, self.cfg_b.ptype

    def delay_ns(self, hops):
        return FusionTiming.fused_delay(self.cfg_a.ptype, self.cfg_b.ptype, hops)

    def validate_placement(self, hops):
        """Check the paper's stitching rules for a candidate placement."""
        if hops > MAX_FUSION_HOPS:
            raise ValueError(
                f"stitched patches {hops} hops apart exceed the "
                f"{MAX_FUSION_HOPS}-hop limit"
            )
        delay = self.delay_ns(hops)
        if not FusionTiming.fits_single_cycle(delay):
            raise ValueError(
                f"fused path {delay:.2f} ns misses the "
                f"{FusionTiming.clock_ns:.2f} ns clock"
            )

    def ext_slots_used(self):
        """Original operand slots consumed by either half."""
        used = set(self.cfg_a.ext_slots_used())
        for slot, source in enumerate(self.b_ext):
            if source.startswith("ext") and slot in set(self.cfg_b.ext_slots_used()):
                used.add(int(source[3]))
        return sorted(used)

    def __repr__(self):
        return (
            f"FusedConfig({{{self.cfg_a.ptype.name}, {self.cfg_b.ptype.name}}}, "
            f"outs={self.outs})"
        )
