"""The three heterogeneous polymorphic patch types (plus baselines).

Figure 3: every Stitch patch starts with ``A`` (ALU) then ``T`` (LMAU)
— the common ``AT`` prefix — followed by a type-specific pair: ``MA``
(multiplier then ALU), ``AS`` (ALU then shifter) or ``SA`` (shifter
then ALU).  The op-chain ``AA`` is realized inside {AT-MA} via the
intermediate chain connection with ``T`` and ``M`` bypassed
(Section III-A).

The comparison architecture LOCUS deploys a per-core *special
functional unit*: a larger compute-only chain with no scratchpad access
(Section VI-B), modelled here as the :data:`LOCUS_SFU` type.

Synthesis numbers (Table IV / Table III) are attached to each type and
feed the fusion timing and area models.
"""

from repro.core.units import UnitKind, first_alu_spec, late_spec, lmau_spec


class PatchType:
    """One patch datapath: an ordered chain of four unit specs.

    ``kinds`` names the unit at each chain position.  Position 0 must
    be an ALU (it gets the full 3-bit op menu); an LMAU may only sit at
    position 1, mirroring the AT prefix of Figure 3.
    """

    def __init__(self, name, kinds, delay_ns, area_um2, fusible=True):
        kinds = tuple(kinds)
        if len(kinds) != 4:
            raise ValueError("a patch chain has exactly four unit positions")
        if kinds[0] is not UnitKind.ALU:
            raise ValueError("position 0 must be the AT-prefix ALU")
        if UnitKind.LMAU in kinds[2:] or kinds[0] is UnitKind.LMAU:
            raise ValueError("an LMAU may only occupy position 1")
        self.name = name
        self.kinds_tuple = kinds
        self.delay_ns = delay_ns
        self.area_um2 = area_um2
        self.fusible = fusible
        units = [first_alu_spec()]
        if kinds[1] is UnitKind.LMAU:
            units.append(lmau_spec())
        else:
            units.append(late_spec(1, kinds[1]))
        units.append(late_spec(2, kinds[2]))
        units.append(late_spec(3, kinds[3]))
        self.units = tuple(units)

    @property
    def has_lmau(self):
        return self.kinds_tuple[1] is UnitKind.LMAU

    @property
    def chain_signature(self):
        """Unit-kind string, e.g. ``ATMA``."""
        return "".join(kind.value for kind in self.kinds_tuple)

    def unit(self, position):
        return self.units[position]

    def kinds(self):
        return self.kinds_tuple

    def __repr__(self):
        return f"PatchType({{{self.name}}})"

    def __eq__(self, other):
        return isinstance(other, PatchType) and other.name == self.name

    def __hash__(self):
        return hash(self.name)


# Delay and area per Table IV of the paper (40 nm synthesis).
AT_MA = PatchType(
    "AT-MA", (UnitKind.ALU, UnitKind.LMAU, UnitKind.MUL, UnitKind.ALU),
    delay_ns=1.38, area_um2=4152,
)
AT_AS = PatchType(
    "AT-AS", (UnitKind.ALU, UnitKind.LMAU, UnitKind.ALU, UnitKind.SHIFT),
    delay_ns=1.12, area_um2=2096,
)
AT_SA = PatchType(
    "AT-SA", (UnitKind.ALU, UnitKind.LMAU, UnitKind.SHIFT, UnitKind.ALU),
    delay_ns=1.02, area_um2=2157,
)

PATCH_TYPES = {p.name: p for p in (AT_MA, AT_AS, AT_SA)}

# LOCUS's per-core conventional ISE accelerator: a compute-only chain
# (no LMAU, not fusible).  Area = Table III total (1,288,044 um^2) / 16
# cores; its standalone clock tops out at 400 MHz (Section VI-D), hence
# the 2.4 ns chain delay.
LOCUS_SFU = PatchType(
    "LOCUS-SFU", (UnitKind.ALU, UnitKind.MUL, UnitKind.ALU, UnitKind.SHIFT),
    delay_ns=2.4, area_um2=80503, fusible=False,
)
