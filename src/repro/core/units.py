"""Functional units composing a polymorphic patch.

A patch is a linear chain of four units (Figure 3): an ALU followed by
the local-memory-access unit (the common ``AT`` prefix), then a
type-specific pair (``MA``, ``AS`` or ``SA``).  A single *chain wire*
carries the output of the most recent active unit forward; bypassed
units are transparent.  Operand muxes are deliberately narrow so the
whole configuration packs into the paper's 19 control bits (see
:mod:`repro.core.config` for the exact field layout).
"""

import enum

from repro.isa.instructions import Op


class UnitKind(enum.Enum):
    """The paper's four operation groups (Section III-A)."""

    ALU = "A"
    SHIFT = "S"
    MUL = "M"
    LMAU = "T"


class Source:
    """Operand sources selectable by unit input muxes."""

    CHAIN = "chain"
    EXT0 = "ext0"
    EXT1 = "ext1"
    EXT2 = "ext2"
    EXT3 = "ext3"

    EXTS = (EXT0, EXT1, EXT2, EXT3)
    ALL = (CHAIN,) + EXTS

    @staticmethod
    def ext(index):
        return Source.EXTS[index]

    @staticmethod
    def is_ext(source):
        return source in Source.EXTS

    @staticmethod
    def ext_index(source):
        return Source.EXTS.index(source)


# Op menus per chain position.  Position 0 is the full ALU of the AT
# prefix (3-bit op field); later compute positions have 2-bit op fields
# (three operations + bypass).
FIRST_ALU_OPS = (Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR, Op.SLT, Op.SEQ)
LATE_ALU_OPS = (Op.ADD, Op.SUB, Op.XOR)
SHIFT_UNIT_OPS = (Op.SLL, Op.SRL, Op.SRA)
MUL_UNIT_OPS = (Op.MUL, Op.MULH)


class UnitSpec:
    """One chain position: kind, op menu and legal operand sources."""

    __slots__ = ("position", "kind", "ops", "in1_choices", "in2_choices")

    def __init__(self, position, kind, ops, in1_choices, in2_choices):
        self.position = position
        self.kind = kind
        self.ops = tuple(ops)
        self.in1_choices = tuple(in1_choices)
        self.in2_choices = tuple(in2_choices)

    def allows_op(self, op):
        return op in self.ops

    def __repr__(self):
        return f"UnitSpec(#{self.position} {self.kind.value})"


def first_alu_spec():
    """Position 0: the AT-prefix ALU — both inputs pick any external operand."""
    return UnitSpec(0, UnitKind.ALU, FIRST_ALU_OPS, Source.EXTS, Source.EXTS)


def lmau_spec():
    """Position 1: the LMAU.  Addressing is hardwired (see TMode)."""
    return UnitSpec(1, UnitKind.LMAU, (Op.LW, Op.SW), (Source.CHAIN,), (Source.EXT2, Source.EXT3))


def late_spec(position, kind):
    """Positions 1-3 compute units: narrow 2-bit muxes.

    ``in1`` selects chain or ext2; ``in2`` selects chain or ext1..ext3
    (chain on both inputs realizes squaring/doubling patterns).
    """
    ops = {
        UnitKind.ALU: LATE_ALU_OPS,
        UnitKind.SHIFT: SHIFT_UNIT_OPS,
        UnitKind.MUL: MUL_UNIT_OPS,
    }[kind]
    return UnitSpec(
        position, kind, ops,
        (Source.CHAIN, Source.EXT2),
        (Source.CHAIN, Source.EXT1, Source.EXT2, Source.EXT3),
    )
