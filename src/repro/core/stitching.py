"""Algorithm 1: compile-time patch allocation and stitching.

Greedy bottleneck relief: repeatedly take the slowest kernel of the
application, give it the best still-available patch (or fused pair
reachable over a free inter-patch path within the hop budget), place
the kernel on the origin tile and update its execution time — until no
patch is left or the bottleneck cannot be improved.

The allocator works on *cycle tables*: for each stage, the measured
per-item cycles of every compiled option (from
:class:`repro.compiler.KernelCompiler`), keyed by option name
("baseline", "AT-MA", "AT-MA+AT-AS", ...).  Fused option names are
``local+remote``; the origin tile must carry the local type, the
remote patch the other.
"""

from repro.core.fusion import MAX_FUSION_HOPS
from repro.core.placement import DEFAULT_PLACEMENT
from repro.interpatch.network import InterPatchNetwork
from repro.interpatch.pathfinder import find_path
from repro.provenance.stitch import (
    CHOSEN,
    INFEASIBLE,
    LOST,
    NO_FEASIBLE_TILE,
    NO_FREE_PAIR,
    NULL_ATTEMPT,
    NULL_ROUND,
    NULL_VARIANT,
    PLACED,
    STOP_BOTTLENECK_DONE,
    STOP_BOTTLENECK_STUCK,
    STOP_CONVERGED,
    STOP_PATCHES_EXHAUSTED,
)

BASELINE = "baseline"


class Assignment:
    """Where one stage landed and how it is accelerated."""

    __slots__ = ("stage_id", "tile", "option", "remote_tile", "path", "cycles")

    def __init__(self, stage_id, tile, option, remote_tile, path, cycles):
        self.stage_id = stage_id
        self.tile = tile
        self.option = option           # option name or BASELINE
        self.remote_tile = remote_tile
        self.path = path               # inter-patch path (fused only)
        self.cycles = cycles

    @property
    def fused(self):
        return self.remote_tile is not None

    def __repr__(self):
        extra = f" + tile {self.remote_tile}" if self.fused else ""
        return (
            f"Assignment(stage {self.stage_id} @ tile {self.tile}{extra}: "
            f"{self.option}, {self.cycles} cyc)"
        )


class StitchPlan:
    """Complete output of Algorithm 1 for one application."""

    def __init__(self, app_name, assignments, network, placement=None):
        self.app_name = app_name
        self.assignments = assignments     # stage id -> Assignment
        self.network = network             # configured InterPatchNetwork
        self.placement = placement         # patch Placement (timing info)

    def tile_of(self, stage_id):
        return self.assignments[stage_id].tile

    def bottleneck_cycles(self):
        return max(a.cycles for a in self.assignments.values())

    def accelerated(self):
        return [a for a in self.assignments.values() if a.option != BASELINE]

    def fused_pairs(self):
        return [a for a in self.assignments.values() if a.fused]

    def describe(self):
        """Human-readable plan, with stitched-path timing per fusion."""
        # Local import: interpatch.timing has no dependency back here,
        # but keeping describe() self-contained mirrors render().
        from repro.interpatch.timing import (
            fused_path_delay_ns,
            path_hops,
            path_traversals,
        )

        lines = [f"Stitching for {self.app_name}:"]
        for stage_id in sorted(self.assignments):
            assignment = self.assignments[stage_id]
            lines.append(f"  {assignment!r}")
            if not assignment.fused or not assignment.path:
                continue
            hops = path_hops(assignment.path)
            route = "->".join(str(tile) for tile in assignment.path)
            detail = (
                f"    path {route}: {hops} hop{'s' if hops != 1 else ''}, "
                f"{path_traversals(assignment.path)} round-trip traversals"
            )
            if self.placement is not None:
                delay = fused_path_delay_ns(
                    self.placement.type_of(assignment.tile),
                    self.placement.type_of(assignment.remote_tile),
                    assignment.path,
                )
                detail += f", {delay:.2f} ns fused delay"
            lines.append(detail)
        return "\n".join(lines)


def _feasible_single(ptype_name, placement, host_free, patch_free):
    """Tiles that could host the kernel and own a free local patch."""
    return [
        tile for tile in sorted(host_free)
        if tile in patch_free and placement.type_of(tile).name == ptype_name
    ]


def _feasible_pair(local_name, remote_name, placement, host_free,
                   patch_free, network, attempt=NULL_ATTEMPT):
    """Best (origin, remote, path): shortest free round-trip path.

    ``attempt`` (an :class:`repro.provenance.OptionAttempt`) receives
    every (origin, remote) alternative examined and its fate, plus the
    individual path probes, so a trace can say exactly why a fusion
    landed where it did — or could not land at all.
    """
    best = None
    best_record = None
    for origin in sorted(host_free):
        if origin not in patch_free:
            continue
        if placement.type_of(origin).name != local_name:
            continue
        for remote in sorted(patch_free):
            if remote == origin:
                continue
            if placement.type_of(remote).name != remote_name:
                continue
            if placement.hops(origin, remote) > MAX_FUSION_HOPS:
                attempt.alternative(
                    origin, remote, None, INFEASIBLE, "beyond hop budget"
                )
                continue
            path = find_path(
                placement.mesh, origin, remote,
                reserved_links=network.reserved_links,
                probe=attempt.probe,
            )
            if path is None:
                attempt.alternative(
                    origin, remote, None, INFEASIBLE, "no free path"
                )
                continue
            record = attempt.alternative(
                origin, remote, path, LOST, f"{len(path) - 1}-hop path"
            )
            if best is None or len(path) < len(best[2]):
                best = (origin, remote, path)
                best_record = record
    if best_record is not None:
        best_record.outcome = CHOSEN
    return best


def stitch_application(app_name, stage_cycles, placement=None,
                       allowed=None, trace=None):
    """Run Algorithm 1.

    ``stage_cycles`` maps stage id to ``{option name: cycles}`` and
    must include ``"baseline"``.  ``allowed`` optionally restricts the
    usable option names (e.g. singles only for Stitch-w/o-fusion).
    ``trace`` (a :class:`repro.provenance.VariantTrace`) optionally
    records every bottleneck-relief round, option attempt and placement
    alternative; the default null trace costs nothing.
    Returns a :class:`StitchPlan`.
    """
    placement = placement if placement is not None else DEFAULT_PLACEMENT
    trace = trace if trace is not None else NULL_VARIANT
    network = InterPatchNetwork(placement.mesh)
    stage_ids = sorted(stage_cycles)
    if len(stage_ids) > placement.mesh.num_tiles:
        raise ValueError("more stages than tiles")

    current = {sid: stage_cycles[sid][BASELINE] for sid in stage_ids}
    checked = {sid: set() for sid in stage_ids}
    done = set()
    assignments = {}
    host_free = set(range(placement.mesh.num_tiles))
    patch_free = set(range(placement.mesh.num_tiles))

    def options_for(sid):
        table = stage_cycles[sid]
        names = [
            name for name, cycles in table.items()
            if name != BASELINE
            and name not in checked[sid]
            and cycles < current[sid]
            and (allowed is None or name in allowed)
        ]
        names.sort(key=lambda name: table[name])
        return names

    while patch_free and len(done) < len(stage_ids):
        bottleneck = max(stage_ids, key=lambda sid: (current[sid], -sid))
        if bottleneck in done:
            # The slowest kernel is already accelerated as far as it
            # goes; the pipeline rate cannot improve further.
            trace.stop(STOP_BOTTLENECK_DONE)
            break
        round_rec = trace.round(bottleneck, current[bottleneck])
        placed = False
        for name in options_for(bottleneck):
            attempt = round_rec.attempt(name, stage_cycles[bottleneck][name])
            if "+" in name:
                local_name, remote_name = name.split("+", 1)
                found = _feasible_pair(
                    local_name, remote_name, placement,
                    host_free, patch_free, network, attempt=attempt,
                )
                if found is None:
                    attempt.outcome = NO_FREE_PAIR
                    checked[bottleneck].add(name)
                    continue
                origin, remote, path = found
                network.stitch(path)
                assignments[bottleneck] = Assignment(
                    bottleneck, origin, name, remote, path,
                    stage_cycles[bottleneck][name],
                )
                host_free.discard(origin)
                patch_free.discard(origin)
                patch_free.discard(remote)
            else:
                tiles = _feasible_single(name, placement, host_free, patch_free)
                if not tiles:
                    attempt.outcome = NO_FEASIBLE_TILE
                    checked[bottleneck].add(name)
                    continue
                origin = tiles[0]
                attempt.alternative(origin, None, None, CHOSEN)
                for loser in tiles[1:]:
                    attempt.alternative(
                        loser, None, None, LOST, "later in tile order"
                    )
                assignments[bottleneck] = Assignment(
                    bottleneck, origin, name, None, None,
                    stage_cycles[bottleneck][name],
                )
                host_free.discard(origin)
                patch_free.discard(origin)
            attempt.outcome = PLACED
            round_rec.placed = name
            round_rec.cycles_after = stage_cycles[bottleneck][name]
            current[bottleneck] = stage_cycles[bottleneck][name]
            done.add(bottleneck)
            placed = True
            break
        if not placed:
            # The bottleneck cannot be sped up: overall throughput is
            # fixed, so Algorithm 1 returns (lines 6-7 of the paper).
            trace.stop(STOP_BOTTLENECK_STUCK)
            break
    if not patch_free:
        trace.stop(STOP_PATCHES_EXHAUSTED)

    # Remaining stages take the leftover tiles, unaccelerated.
    leftovers = sorted(host_free)
    for sid in stage_ids:
        if sid in assignments:
            continue
        tile = leftovers.pop(0)
        assignments[sid] = Assignment(
            sid, tile, BASELINE, None, None, current[sid]
        )
    plan = StitchPlan(app_name, assignments, network, placement=placement)
    trace.finish(plan.bottleneck_cycles())
    return plan


def upgrade_plan(plan, stage_cycles, placement=None, allowed=None,
                 trace=None):
    """Second pass: spend leftover patches on the rotating bottleneck.

    Placement is kept fixed; an unaccelerated stage may claim its own
    tile's patch (single or fused), and a single-patch stage may
    upgrade to a fusion whose local half matches its tile.  Runs until
    the bottleneck stage cannot improve.  ``trace`` continues the same
    :class:`repro.provenance.VariantTrace` the base greedy run wrote.
    """
    placement = placement if placement is not None else DEFAULT_PLACEMENT
    trace = trace if trace is not None else NULL_VARIANT
    network = plan.network
    assignments = plan.assignments
    patch_free = set(range(placement.mesh.num_tiles))
    for a in assignments.values():
        if a.option != BASELINE:
            patch_free.discard(a.tile)
        if a.remote_tile is not None:
            patch_free.discard(a.remote_tile)

    def usable(name, assignment):
        if allowed is not None and name not in allowed:
            return False
        local = name.split("+", 1)[0]
        if placement.type_of(assignment.tile).name != local:
            return False
        if assignment.option == BASELINE:
            return assignment.tile in patch_free
        return assignment.option == local and "+" in name

    improved = True
    while improved:
        improved = False
        bottleneck = max(
            assignments.values(), key=lambda a: (a.cycles, -a.stage_id)
        )
        table = stage_cycles[bottleneck.stage_id]
        names = sorted(
            (name for name in table if name != BASELINE
             and table[name] < bottleneck.cycles
             and usable(name, bottleneck)),
            key=lambda name: table[name],
        )
        round_rec = (
            trace.round(bottleneck.stage_id, bottleneck.cycles)
            if names else NULL_ROUND
        )
        for name in names:
            attempt = round_rec.attempt(name, table[name])
            if "+" not in name:
                patch_free.discard(bottleneck.tile)
                attempt.alternative(bottleneck.tile, None, None, CHOSEN)
                attempt.outcome = PLACED
                bottleneck.option = name
                bottleneck.cycles = table[name]
            else:
                remote_name = name.split("+", 1)[1]
                chosen = None
                for remote in sorted(patch_free):
                    if remote == bottleneck.tile:
                        continue
                    if placement.type_of(remote).name != remote_name:
                        continue
                    hops = placement.hops(bottleneck.tile, remote)
                    if hops > MAX_FUSION_HOPS:
                        attempt.alternative(
                            bottleneck.tile, remote, None, INFEASIBLE,
                            "beyond hop budget",
                        )
                        continue
                    path = find_path(
                        placement.mesh, bottleneck.tile, remote,
                        reserved_links=network.reserved_links,
                        probe=attempt.probe,
                    )
                    if path is None:
                        attempt.alternative(
                            bottleneck.tile, remote, None, INFEASIBLE,
                            "no free path",
                        )
                        continue
                    chosen = (remote, path)
                    attempt.alternative(
                        bottleneck.tile, remote, path, CHOSEN,
                        f"{len(path) - 1}-hop path",
                    )
                    break
                if chosen is None:
                    attempt.outcome = NO_FREE_PAIR
                    continue
                remote, path = chosen
                network.stitch(path)
                patch_free.discard(bottleneck.tile)
                patch_free.discard(remote)
                attempt.outcome = PLACED
                bottleneck.option = name
                bottleneck.remote_tile = remote
                bottleneck.path = path
                bottleneck.cycles = table[name]
            round_rec.placed = name
            round_rec.cycles_after = table[name]
            improved = True
            break
    trace.stop(STOP_CONVERGED)
    trace.finish(plan.bottleneck_cycles())
    return plan


def stitch_best(app_name, stage_cycles, placement=None, allowed=None,
                verify=False, trace=None):
    """Version selection over greedy variants (Section IV's goal).

    The pure bottleneck greedy can starve replicated bottleneck kernels
    by spending two patches per fusion; the tool chain "determines the
    appropriate kernel mapping, version selection, patch stitching ...
    aiming for the maximal overall throughput", so several plan
    variants are generated and the lowest-bottleneck one kept (fusion
    then never loses to not fusing):

    1. the paper's greedy with all options,
    2. the greedy restricted to single patches,
    3. variant 2 followed by a fused-upgrade pass on leftover patches.

    ``verify=True`` additionally proves the chosen plan against the
    static network rules (link disjointness, hop and delay budgets) and
    raises :class:`repro.verify.VerificationError` on any violation
    rather than returning an invalid plan.

    ``trace`` (a :class:`repro.provenance.StitchTrace`) optionally
    records all three variants round by round and which one won.
    """
    def variant(name):
        return trace.variant(name) if trace is not None else None

    traces = [variant("greedy-all"), variant("singles-only"),
              variant("singles+upgrade")]
    plans = [
        stitch_application(app_name, stage_cycles, placement, allowed,
                           trace=traces[0])
    ]
    singles = {
        name for sid in stage_cycles for name in stage_cycles[sid]
        if name != BASELINE and "+" not in name
        and (allowed is None or name in allowed)
    }
    plans.append(
        stitch_application(app_name, stage_cycles, placement, singles,
                           trace=traces[1])
    )
    plans.append(
        upgrade_plan(
            stitch_application(app_name, stage_cycles, placement, singles,
                               trace=traces[2]),
            stage_cycles, placement, allowed, trace=traces[2],
        )
    )
    best = min(plans, key=lambda plan: plan.bottleneck_cycles())
    if trace is not None:
        trace.chose(traces[plans.index(best)])
    if verify:
        # Local import: repro.verify.plan_checks imports this module.
        from repro.verify.diagnostics import VerificationError
        from repro.verify.plan_checks import check_plan

        report = check_plan(
            best, placement if placement is not None else DEFAULT_PLACEMENT
        )
        if not report.ok():
            raise VerificationError(report)
    return best
