"""The 19-bit per-patch control encoding.

Each custom instruction carries 19 control bits per patch (Section
III-A; a fused pair needs 38, matching the inter-patch NoC's 38 control
wires).  The concrete field layout used by this reproduction, LSB
first::

    [ 0: 3]  u0 op       0 = bypass, 1..7 = FIRST_ALU_OPS index + 1
    [ 3: 5]  u0 in1      external operand select (ext0..ext3)
    [ 5: 7]  u0 in2      external operand select
    [ 7: 9]  T mode      0 off | 1 load (addr = chain)
                         | 2 store (addr = ext2, data = chain)
                         | 3 store (addr = chain, data = ext3)
    [ 9:11]  u2 op       0 = bypass, 1..3 = unit-2 op menu index + 1
    [11]     u2 in1      0 = chain, 1 = ext2
    [12:14]  u2 in2      0 = chain, 1..3 = ext1..ext3
    [14:16]  u3 op       0 = bypass, 1..3 = unit-3 op menu index + 1
    [16]     u3 in1      0 = chain, 1 = ext2
    [17:19]  u3 in2      0 = chain, 1..3 = ext1..ext3

Total: 19 bits exactly.  The *chain* wire carries the most recent
active unit's output (defaulting to ext0 when nothing has produced a
value yet); bypassed units are transparent.
"""

import enum

from repro.core.units import Source
from repro.core.patches import PatchType

CONTROL_BITS = 19


class TMode(enum.IntEnum):
    """LMAU operating mode (2-bit field)."""

    OFF = 0
    LOAD = 1                # result = SPM[chain]
    STORE_DATA_CHAIN = 2    # SPM[ext2] = chain
    STORE_ADDR_CHAIN = 3    # SPM[chain] = ext3


class UnitConfig:
    """Configuration of one compute unit: op + operand sources."""

    __slots__ = ("op", "in1", "in2")

    def __init__(self, op, in1, in2):
        self.op = op
        self.in1 = in1
        self.in2 = in2

    def __repr__(self):
        return f"UnitConfig({self.op.value}, {self.in1}, {self.in2})"

    def __eq__(self, other):
        return (
            isinstance(other, UnitConfig)
            and (self.op, self.in1, self.in2) == (other.op, other.in1, other.in2)
        )

    def __hash__(self):
        return hash((self.op, self.in1, self.in2))


class PatchConfig:
    """A complete, validated single-patch configuration."""

    def __init__(self, ptype, u0=None, t=TMode.OFF, u2=None, u3=None, u1=None):
        if not isinstance(ptype, PatchType):
            raise TypeError("ptype must be a PatchType")
        self.ptype = ptype
        self.u0 = u0
        self.t = TMode(t)
        self.u1 = u1
        self.u2 = u2
        self.u3 = u3
        self._validate()

    def _validate(self):
        if self.ptype.has_lmau:
            if self.u1 is not None:
                raise ValueError(
                    f"{self.ptype.name} position 1 is the LMAU; use t=..."
                )
        else:
            if self.t is not TMode.OFF:
                raise ValueError(f"{self.ptype.name} has no LMAU")
        if (
            self.u0 is None and self.t is TMode.OFF and self.u1 is None
            and self.u2 is None and self.u3 is None
        ):
            raise ValueError("configuration activates no unit")
        for position, unit_cfg in (
            (0, self.u0), (1, self.u1), (2, self.u2), (3, self.u3)
        ):
            if unit_cfg is None:
                continue
            spec = self.ptype.unit(position)
            if not spec.allows_op(unit_cfg.op):
                raise ValueError(
                    f"unit {position} of {self.ptype.name} cannot compute "
                    f"{unit_cfg.op.value} (menu: {[o.value for o in spec.ops]})"
                )
            if unit_cfg.in1 not in spec.in1_choices:
                raise ValueError(
                    f"unit {position} in1 cannot select {unit_cfg.in1}"
                )
            if unit_cfg.in2 not in spec.in2_choices:
                raise ValueError(
                    f"unit {position} in2 cannot select {unit_cfg.in2}"
                )

    # -- queries -----------------------------------------------------------

    def active_positions(self):
        positions = []
        if self.u0 is not None:
            positions.append(0)
        if self.t is not TMode.OFF or self.u1 is not None:
            positions.append(1)
        if self.u2 is not None:
            positions.append(2)
        if self.u3 is not None:
            positions.append(3)
        return positions

    def unit_config(self, position):
        """The compute UnitConfig at ``position`` (None for LMAU/bypass)."""
        return (self.u0, self.u1, self.u2, self.u3)[position]

    def uses_lmau(self):
        return self.t is not TMode.OFF

    def signature(self):
        """Active unit-kind string, e.g. ``AT`` or ``AS``."""
        kinds = self.ptype.kinds()
        return "".join(kinds[p].value for p in self.active_positions())

    def ext_slots_used(self):
        """Indices of external operand slots this config reads."""
        used = set()
        for unit_cfg in (self.u0, self.u1, self.u2, self.u3):
            if unit_cfg is None:
                continue
            for source in (unit_cfg.in1, unit_cfg.in2):
                if Source.is_ext(source):
                    used.add(Source.ext_index(source))
        if self.t is TMode.STORE_DATA_CHAIN:
            used.add(2)
        if self.t is TMode.STORE_ADDR_CHAIN:
            used.add(3)
        # An implicit chain default of ext0 counts as a read when the
        # first active unit consumes the chain.
        first = self.active_positions()[0]
        if first == 1:
            used.add(0)  # every T mode consumes the chain for addr or data
        if first in (2, 3):
            unit_cfg = self.u2 if first == 2 else self.u3
            if unit_cfg.in1 == Source.CHAIN:
                used.add(0)
        return sorted(used)

    # -- encoding ------------------------------------------------------------

    def encode(self):
        """Pack into the 19-bit control word (AT-prefix patches only)."""
        if not self.ptype.has_lmau:
            raise ValueError(
                f"{self.ptype.name} does not use the 19-bit Stitch encoding"
            )
        bits = 0

        def put(value, offset, width):
            nonlocal bits
            if not 0 <= value < (1 << width):
                raise ValueError(f"field overflow: {value} in {width} bits")
            bits |= value << offset

        if self.u0 is not None:
            spec = self.ptype.unit(0)
            put(spec.ops.index(self.u0.op) + 1, 0, 3)
            put(Source.ext_index(self.u0.in1), 3, 2)
            put(Source.ext_index(self.u0.in2), 5, 2)
        put(int(self.t), 7, 2)
        for unit_cfg, spec_pos, base in ((self.u2, 2, 9), (self.u3, 3, 14)):
            if unit_cfg is None:
                continue
            spec = self.ptype.unit(spec_pos)
            put(spec.ops.index(unit_cfg.op) + 1, base, 2)
            put(0 if unit_cfg.in1 == Source.CHAIN else 1, base + 2, 1)
            in2_code = (
                0 if unit_cfg.in2 == Source.CHAIN
                else Source.ext_index(unit_cfg.in2)
            )
            put(in2_code, base + 3, 2)
        assert bits < (1 << CONTROL_BITS)
        return bits

    @classmethod
    def decode(cls, ptype, bits):
        """Inverse of :meth:`encode`."""
        if not ptype.has_lmau:
            raise ValueError(
                f"{ptype.name} does not use the 19-bit Stitch encoding"
            )
        if not 0 <= bits < (1 << CONTROL_BITS):
            raise ValueError("control word exceeds 19 bits")

        def get(offset, width):
            return (bits >> offset) & ((1 << width) - 1)

        u0 = None
        op_code = get(0, 3)
        if op_code:
            spec = ptype.unit(0)
            u0 = UnitConfig(
                spec.ops[op_code - 1],
                Source.ext(get(3, 2)),
                Source.ext(get(5, 2)),
            )
        t = TMode(get(7, 2))
        late = []
        for spec_pos, base in ((2, 9), (3, 14)):
            op_code = get(base, 2)
            if op_code:
                spec = ptype.unit(spec_pos)
                in2_code = get(base + 3, 2)
                late.append(
                    UnitConfig(
                        spec.ops[op_code - 1],
                        Source.CHAIN if get(base + 2, 1) == 0 else Source.EXT2,
                        Source.CHAIN if in2_code == 0 else Source.ext(in2_code),
                    )
                )
            else:
                late.append(None)
        return cls(ptype, u0=u0, t=t, u2=late[0], u3=late[1])

    def __eq__(self, other):
        return (
            isinstance(other, PatchConfig)
            and self.ptype == other.ptype
            and (self.u0, self.t, self.u1, self.u2, self.u3)
            == (other.u0, other.t, other.u1, other.u2, other.u3)
        )

    def __hash__(self):
        return hash((self.ptype, self.u0, self.t, self.u1, self.u2, self.u3))

    def __repr__(self):
        parts = []
        if self.u0 is not None:
            parts.append(f"u0={self.u0!r}")
        if self.t is not TMode.OFF:
            parts.append(f"t={self.t.name}")
        if self.u1 is not None:
            parts.append(f"u1={self.u1!r}")
        if self.u2 is not None:
            parts.append(f"u2={self.u2!r}")
        if self.u3 is not None:
            parts.append(f"u3={self.u3!r}")
        return f"PatchConfig({self.ptype.name}: {', '.join(parts)})"
