"""The paper's primary contribution: polymorphic patches and stitching.

* :mod:`repro.core.units` / :mod:`repro.core.patches` — the three
  heterogeneous patch datapaths ({AT-MA}, {AT-AS}, {AT-SA}) as chains of
  functional units with constrained operand muxes,
* :mod:`repro.core.config` — the 19-bit per-patch control encoding,
* :mod:`repro.core.executor` — single-cycle functional execution of a
  configured (possibly fused) patch, including LMAU scratchpad traffic,
* :mod:`repro.core.fusion` — fused-patch configurations and the ns-level
  critical-path model (Table IV),
* :mod:`repro.core.placement` — the 8/4/4 patch placement on the 16 tiles,
* :mod:`repro.core.stitching` — Algorithm 1, the compile-time stitcher.
"""

from repro.core.units import UnitKind, UnitSpec, Source
from repro.core.patches import (
    AT_AS,
    AT_MA,
    AT_SA,
    PATCH_TYPES,
    PatchType,
)
from repro.core.config import (
    CONTROL_BITS,
    PatchConfig,
    TMode,
    UnitConfig,
)
from repro.core.fusion import FusedConfig, FusionTiming
from repro.core.executor import PatchExecutor
from repro.core.placement import DEFAULT_PLACEMENT, Placement
from repro.core.stitching import (
    Assignment,
    BASELINE,
    StitchPlan,
    stitch_application,
)

__all__ = [
    "UnitKind",
    "UnitSpec",
    "Source",
    "PatchType",
    "AT_MA",
    "AT_AS",
    "AT_SA",
    "PATCH_TYPES",
    "CONTROL_BITS",
    "PatchConfig",
    "UnitConfig",
    "TMode",
    "FusedConfig",
    "FusionTiming",
    "PatchExecutor",
    "DEFAULT_PLACEMENT",
    "Placement",
    "Assignment",
    "BASELINE",
    "StitchPlan",
    "stitch_application",
]
