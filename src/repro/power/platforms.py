"""Reference wearable platforms (Table I / Figure 15 anchors).

The paper measures a TI SensorTag (Cortex-M3) and an Odroid XU3
(quad Cortex-A7, the Snapdragon Wear 2100 class); with no hardware we
carry their published numbers as fixed external reference points — the
paper itself uses them that way.

Gesture-work calibration: our pipeline item is one 64-point window, so
per-gesture time is ``windows x cycles-per-item / f``.  The paper's
deadline phenomenon (only Stitch meets 7.81 ms; the quad-A7 and
Stitch-without-fusion miss it) pins the per-gesture work to
:data:`WINDOWS_PER_GESTURE` windows — a documented calibration, not a
fit to the paper's absolute milliseconds (see DESIGN.md §1).
"""


from repro.platform import DEFAULT_PLATFORM

GESTURE_DEADLINE_MS = 7.81   # 128 Hz sampling for real-time response
WINDOWS_PER_GESTURE = 224    # ~1.75 s of 128 Hz samples, one 64-pt window/sample


class Platform:
    """A processor platform with published gesture measurements."""

    __slots__ = ("name", "freq_mhz", "power_mw", "gesture_ms", "technology")

    def __init__(self, name, freq_mhz, power_mw, gesture_ms, technology):
        self.name = name
        self.freq_mhz = freq_mhz
        self.power_mw = power_mw
        self.gesture_ms = gesture_ms
        self.technology = technology

    def meets_deadline(self, deadline_ms=GESTURE_DEADLINE_MS):
        return self.gesture_ms is not None and self.gesture_ms < deadline_ms

    def throughput(self):
        """Gestures per second."""
        return 1e3 / self.gesture_ms

    def perf_per_watt(self):
        return self.throughput() / (self.power_mw / 1e3)

    def __repr__(self):
        return f"Platform({self.name}: {self.gesture_ms} ms, {self.power_mw} mW)"


# Table I (measured by the paper's authors).
SENSORTAG = Platform("TI SensorTag (Cortex-M3)", 48, 8.78, 577.0, "-")
CORTEX_A7 = Platform("Quad Cortex-A7 (Odroid XU3)", 1200, 469.0, 13.0, "28nm")


def stitch_platform(gesture_ms, power_mw=None, name="Stitch"):
    """A Platform view of a simulated Stitch configuration."""
    power = DEFAULT_PLATFORM.power
    if power_mw is None:
        power_mw = power.stitch_power_mw
    return Platform(name, power.clock_mhz, power_mw, gesture_ms, "40nm")


STITCH_PLATFORM = stitch_platform  # alias for the factory
