"""Table V: the related-work classification.

A static dataset — the paper's qualitative comparison of configurable
accelerator architectures — exposed so the Table V bench can regenerate
the table and the tests can check Stitch's unique position (the only
tight, heterogeneous, many-core-shareable design at tiny area cost).
"""


class RelatedArchitecture:
    __slots__ = (
        "name", "integration", "granularity", "heterogeneous",
        "sharable", "technology", "area_mm2", "area_class",
    )

    def __init__(self, name, integration, granularity, heterogeneous,
                 sharable, technology, area_mm2, area_class):
        self.name = name
        self.integration = integration
        self.granularity = granularity
        self.heterogeneous = heterogeneous
        self.sharable = sharable
        self.technology = technology
        self.area_mm2 = area_mm2
        self.area_class = area_class


RELATED_WORK = [
    RelatedArchitecture("RISPP", "loose", "kernel", True, False,
                        "FPGA-based", None, "large"),
    RelatedArchitecture("Plasticine", "loose", "kernel", False, False,
                        "28nm", 112.8, "large"),
    RelatedArchitecture("MorphoSys", "loose", "kernel", False, False,
                        "350nm", 180.0, "large"),
    RelatedArchitecture("EGRA", "loose", "kernel", True, False,
                        "90nm", 3.7, "medium"),
    RelatedArchitecture("BERET", "tight", "traces", True, False,
                        "65nm", 0.4, "small"),
    RelatedArchitecture("CCA", "tight", "op-chains", True, False,
                        "130nm", 0.48, "small"),
    RelatedArchitecture("C-Cores", "tight", "kernel", True, False,
                        "45nm", 0.326, "small"),
    RelatedArchitecture("QsCores", "tight", "C-expression", True, False,
                        "45nm", 0.77, "small"),
    RelatedArchitecture("DySer", "tight", "inner most loop", False, False,
                        "55nm", 0.92, "medium"),
    RelatedArchitecture("LOCUS", "tight", "op-chains", False, False,
                        "32nm", 2.3, "medium"),
    RelatedArchitecture("Stitch", "tight", "op-chains", True, True,
                        "40nm", 0.17, "tiny"),
]


def related_work_table():
    """Render Table V as text rows."""
    header = (
        f"{'Architecture':<12} {'Integration':<12} {'Granularity':<16} "
        f"{'Hetero':<7} {'Sharable':<9} {'Tech':<11} {'Area mm2':<9} Class"
    )
    lines = [header, "-" * len(header)]
    for arch in RELATED_WORK:
        area = f"{arch.area_mm2}" if arch.area_mm2 is not None else "-"
        lines.append(
            f"{arch.name:<12} {arch.integration:<12} {arch.granularity:<16} "
            f"{'yes' if arch.heterogeneous else 'no':<7} "
            f"{'yes' if arch.sharable else 'no':<9} "
            f"{arch.technology:<11} {area:<9} {arch.area_class}"
        )
    return "\n".join(lines)
