"""Component-level area/delay database and accelerator composition.

Table IV (40 nm synthesis): per-patch delay/area live on the
:class:`~repro.core.patches.PatchType` objects; the inter-patch NoC
switch is 0.17 ns / 7,423 um^2.  Table III's accelerator totals follow
from composition:

    Stitch w/o fusion =  sum of the 16 patches        (~49.9 k um^2)
    Stitch            =  patches + 16 crossbar switches (~168.6 k um^2)
    LOCUS             =  16 per-core SFUs               (~1.29 M um^2)

and the reproduction asserts these recompose the paper's totals within
a fraction of a percent.
"""

from repro.core.patches import LOCUS_SFU
from repro.core.placement import DEFAULT_PLACEMENT
from repro.platform import DEFAULT_PLATFORM

# Derived compatibility aliases — the numbers themselves live in
# repro.platform's presets (single source of truth).
NOC_SWITCH_DELAY_NS = DEFAULT_PLATFORM.fabric.switch_delay_ns
NOC_SWITCH_AREA_UM2 = DEFAULT_PLATFORM.fabric.switch_area_um2
WIRE_DELAY_PER_HOP_NS = DEFAULT_PLATFORM.fabric.wire_delay_per_hop_ns

# Table III's published totals (um^2), kept for validation.
ACCEL_AREA_UM2 = {
    "LOCUS": 1_288_044,
    "Stitch w/o fusion": 49_872,
    "Stitch": 168_568,
}
ACCEL_AREA_PERCENT = {
    "LOCUS": 3.68,
    "Stitch w/o fusion": 0.15,
    "Stitch": 0.50,
}


class StitchAreaModel:
    """Accelerator area composition over a patch placement."""

    def __init__(self, placement=None):
        self.placement = placement if placement is not None else DEFAULT_PLACEMENT

    def patches_area_um2(self):
        """Total area of the placed patches (= Stitch w/o fusion)."""
        return sum(ptype.area_um2 for ptype in self.placement.layout)

    def interpatch_noc_area_um2(self):
        """One crossbar switch per tile."""
        return NOC_SWITCH_AREA_UM2 * self.placement.mesh.num_tiles

    def stitch_area_um2(self):
        return self.patches_area_um2() + self.interpatch_noc_area_um2()

    def locus_area_um2(self):
        return LOCUS_SFU.area_um2 * self.placement.mesh.num_tiles

    def composed(self):
        """{architecture: composed area} mirroring Table III's rows."""
        return {
            "LOCUS": self.locus_area_um2(),
            "Stitch w/o fusion": self.patches_area_um2(),
            "Stitch": self.stitch_area_um2(),
        }

    def relative_error(self):
        """Composed-vs-published relative error per architecture."""
        return {
            name: abs(self.composed()[name] - ACCEL_AREA_UM2[name])
            / ACCEL_AREA_UM2[name]
            for name in ACCEL_AREA_UM2
        }

    def locus_over_stitch(self):
        """Paper: LOCUS accelerators are 7.64x larger than Stitch's."""
        return self.locus_area_um2() / self.stitch_area_um2()
