"""Power- and area-efficiency ratios (Figures 14 and 15, Table I).

Headline relations the paper derives (all at 200 MHz unless noted):

* perf/W vs baseline = speedup / (P_stitch / P_baseline)
  — with speedup 2.3x and the 23 % power overhead: 2.3 / 1.30 = 1.77x,
* perf/area vs baseline ~= speedup (the 0.5 % area overhead is noise),
* vs the quad-A7 smartwatch class: throughput and perf/W from the
  platform anchors of Table I.
"""

from repro.power.chip import ChipModel
from repro.power.platforms import CORTEX_A7


class EfficiencyModel:
    """Efficiency ratios for a measured speedup profile."""

    def __init__(self, chip=None):
        self.chip = chip if chip is not None else ChipModel()

    # -- vs. the 16-core baseline (Figure 14) ------------------------------

    def power_ratio(self):
        """P_stitch / P_baseline (the 23 % overhead -> 1.30)."""
        return self.chip.total_power_mw() / self.chip.baseline_power_mw()

    def perf_per_watt_vs_baseline(self, speedup):
        return speedup / self.power_ratio()

    def area_ratio(self):
        """Chip area ratio Stitch/baseline (accelerators are 0.5 %)."""
        chip_um2 = self.chip.chip_area_mm2() * 1e6
        return chip_um2 / (chip_um2 - self.chip.area.stitch_area_um2())

    def perf_per_area_vs_baseline(self, speedup):
        return speedup / self.area_ratio()

    # -- vs. state-of-the-art wearables (Figure 15) ---------------------------

    def throughput_vs_a7(self, stitch_seconds_per_item, a7_seconds_per_item):
        return a7_seconds_per_item / stitch_seconds_per_item

    def perf_per_watt_vs_a7(self, stitch_seconds_per_item, a7_seconds_per_item):
        speedup = self.throughput_vs_a7(
            stitch_seconds_per_item, a7_seconds_per_item
        )
        power_ratio = self.chip.total_power_mw() / CORTEX_A7.power_mw
        return speedup / power_ratio

    def power_vs_a7(self):
        return self.chip.total_power_mw() / CORTEX_A7.power_mw
