"""Timing, area and power models (Section VI-D).

We cannot re-run Synopsys synthesis; instead the per-component numbers
the paper publishes (Table IV delays/areas, Table III accelerator
areas, Figure 13 breakdowns, Table I platform measurements) seed an
analytical composition model, and the reproduction checks the
*composition* — breakdown percentages, overhead ratios, efficiency
improvements — for internal consistency.
"""

from repro.power.components import (
    ACCEL_AREA_UM2,
    NOC_SWITCH_AREA_UM2,
    NOC_SWITCH_DELAY_NS,
    StitchAreaModel,
)
from repro.power.chip import ChipModel, POWER_BREAKDOWN
from repro.power.platforms import (
    CORTEX_A7,
    SENSORTAG,
    STITCH_PLATFORM,
    Platform,
    WINDOWS_PER_GESTURE,
)
from repro.power.efficiency import EfficiencyModel
from repro.power.relatedwork import RELATED_WORK, related_work_table

__all__ = [
    "ACCEL_AREA_UM2",
    "NOC_SWITCH_AREA_UM2",
    "NOC_SWITCH_DELAY_NS",
    "StitchAreaModel",
    "ChipModel",
    "POWER_BREAKDOWN",
    "Platform",
    "SENSORTAG",
    "CORTEX_A7",
    "STITCH_PLATFORM",
    "WINDOWS_PER_GESTURE",
    "EfficiencyModel",
    "RELATED_WORK",
    "related_work_table",
]
