"""Whole-chip area/power composition (Figure 13).

Published anchors: the chip burns ~140 mW at 200 MHz with the patches
plus inter-patch NoC accounting for 23 % of power and 0.5 % of area.
The non-accelerator split below (cores / caches+SPM / inter-core NoC /
other) is a documented model assumption — the paper's figure gives the
accelerator share only.
"""

from repro.platform import DEFAULT_PLATFORM
from repro.power.components import StitchAreaModel

# Derived compatibility aliases — the numbers themselves live in
# repro.platform's presets (single source of truth).
STITCH_POWER_MW = DEFAULT_PLATFORM.power.stitch_power_mw        # Table I
NOFUSION_POWER_MW = DEFAULT_PLATFORM.power.nofusion_power_mw    # Table I
ACCEL_POWER_FRACTION = DEFAULT_PLATFORM.power.accel_power_fraction  # Fig 13
ACCEL_AREA_FRACTION = DEFAULT_PLATFORM.power.accel_area_fraction    # Fig 13
CLOCK_MHZ = DEFAULT_PLATFORM.power.clock_mhz

# Model assumption: how the remaining 77 % of power divides.
POWER_BREAKDOWN = {
    "cores": 0.45,
    "caches+SPM": 0.20,
    "inter-core NoC": 0.09,
    "other (DMEM IF, clocking)": 0.03,
    "patches + inter-patch NoC": ACCEL_POWER_FRACTION,
}


class ChipModel:
    """Composes chip-level area and power from the component DB."""

    def __init__(self, placement=None):
        self.area = StitchAreaModel(placement)

    # -- area ---------------------------------------------------------------

    def chip_area_mm2(self):
        """Chip area implied by the 0.5 % accelerator share."""
        return self.area.stitch_area_um2() / ACCEL_AREA_FRACTION / 1e6

    def area_breakdown(self):
        accel = self.area.stitch_area_um2() / 1e6
        chip = self.chip_area_mm2()
        return {
            "patches": self.area.patches_area_um2() / 1e6,
            "inter-patch NoC": self.area.interpatch_noc_area_um2() / 1e6,
            "cores + caches + NoC": chip - accel,
        }

    # -- power ---------------------------------------------------------------

    def total_power_mw(self):
        return STITCH_POWER_MW

    def baseline_power_mw(self):
        """Baseline many-core: Stitch minus the accelerator overhead."""
        return STITCH_POWER_MW * (1.0 - ACCEL_POWER_FRACTION)

    def nofusion_power_mw(self):
        """Stitch w/o fusion: Table I's measured ~108 mW — essentially
        the baseline plus near-idle patches (no repeater network)."""
        return NOFUSION_POWER_MW

    def locus_power_mw(self):
        """LOCUS: accelerator power scaled by its 7.64x area."""
        accel = STITCH_POWER_MW * ACCEL_POWER_FRACTION
        return self.baseline_power_mw() + accel * self.area.locus_over_stitch()

    def power_breakdown_mw(self):
        return {
            name: fraction * STITCH_POWER_MW
            for name, fraction in POWER_BREAKDOWN.items()
        }

    def accel_power_fraction(self):
        return ACCEL_POWER_FRACTION

    def accel_area_fraction(self):
        return self.area.stitch_area_um2() / (self.chip_area_mm2() * 1e6)


class EnergyModel:
    """Per-tile energy of a cycle interval, from the chip power model.

    The published anchor is chip-level (Table I: ~140 mW at 200 MHz for
    the whole 16-tile mesh), so the per-tile figure is the even split
    ``stitch_power_mw / num_tiles`` — the granularity Figure 13's
    energy story needs, without inventing per-component activity
    factors the paper does not give.  With power in mW and the clock in
    MHz, ``P * cycles / f`` lands directly in nanojoules.
    """

    __slots__ = ("params", "num_tiles")

    def __init__(self, params=None, num_tiles=None):
        self.params = params if params is not None else DEFAULT_PLATFORM.power
        self.num_tiles = (
            num_tiles if num_tiles is not None
            else DEFAULT_PLATFORM.noc.mesh_width * DEFAULT_PLATFORM.noc.mesh_height
        )

    def tile_power_mw(self):
        return self.params.stitch_power_mw / self.num_tiles

    def interval_energy_nj(self, cycles):
        """Energy one tile burns over ``cycles`` cycles, in nJ."""
        return self.tile_power_mw() * cycles / self.params.clock_mhz
