"""2-D mesh topology and XY dimension-order routing.

The paper numbers tiles 1..16 starting from the top-left corner
(Figure 2); internally tiles are 0-indexed.  :meth:`Mesh.paper_tile`
converts for display and for reproducing the paper's figures.
"""

from repro.platform import DEFAULT_PLATFORM


class Mesh:
    """A ``width`` x ``height`` mesh of tiles.

    Defaults come from the stitch preset's NoC parameters (the paper's
    4x4 array); pass explicit dimensions or use :meth:`from_params` to
    build other machines.
    """

    def __init__(self, width=None, height=None):
        if width is None:
            width = DEFAULT_PLATFORM.noc.mesh_width
        if height is None:
            height = DEFAULT_PLATFORM.noc.mesh_height
        if width < 1 or height < 1:
            raise ValueError("mesh dimensions must be positive")
        self.width = width
        self.height = height

    @classmethod
    def from_params(cls, params):
        """The mesh a :class:`repro.platform.NoCParams` describes."""
        return cls(params.mesh_width, params.mesh_height)

    @property
    def num_tiles(self):
        return self.width * self.height

    def coords(self, tile):
        """(x, y) of a tile; y grows downward from the top row."""
        self._check(tile)
        return tile % self.width, tile // self.width

    def tile_at(self, x, y):
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ValueError(f"coordinates out of range: ({x}, {y})")
        return y * self.width + x

    def paper_tile(self, tile):
        """Paper numbering: 1-based from the top-left corner."""
        self._check(tile)
        return tile + 1

    def from_paper(self, number):
        tile = number - 1
        self._check(tile)
        return tile

    def _check(self, tile):
        if not 0 <= tile < self.num_tiles:
            raise ValueError(f"tile index out of range: {tile}")

    def neighbors(self, tile):
        """Mesh neighbours (no wraparound)."""
        x, y = self.coords(tile)
        result = []
        if x > 0:
            result.append(self.tile_at(x - 1, y))
        if x < self.width - 1:
            result.append(self.tile_at(x + 1, y))
        if y > 0:
            result.append(self.tile_at(x, y - 1))
        if y < self.height - 1:
            result.append(self.tile_at(x, y + 1))
        return result

    def hop_count(self, src, dst):
        """Manhattan distance."""
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        return abs(sx - dx) + abs(sy - dy)

    def xy_route(self, src, dst):
        """Tiles visited by XY routing (X first), inclusive of endpoints."""
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        path = [src]
        x, y = sx, sy
        step = 1 if dx > x else -1
        while x != dx:
            x += step
            path.append(self.tile_at(x, y))
        step = 1 if dy > y else -1
        while y != dy:
            y += step
            path.append(self.tile_at(x, y))
        return path

    def route_links(self, src, dst):
        """Directed links (tile, tile) traversed by the XY route."""
        path = self.xy_route(src, dst)
        return list(zip(path, path[1:]))

    def __repr__(self):
        return f"Mesh({self.width}x{self.height})"
