"""Packets and flits.

Table II: 1-flit control packets, 5-flit data packets.  A data packet is
one head flit plus up to four 16-byte payload flits, i.e. at most
16 words of payload per packet; longer messages are split by
:func:`packetize`.
"""

from repro.platform import DEFAULT_PLATFORM

# Derived compatibility aliases — the numbers themselves live in
# repro.platform's presets (single source of truth).
FLIT_BYTES = DEFAULT_PLATFORM.noc.flit_bytes
PAYLOAD_FLITS_PER_PACKET = DEFAULT_PLATFORM.noc.payload_flits_per_packet
WORDS_PER_FLIT = FLIT_BYTES // 4
MAX_WORDS_PER_PACKET = PAYLOAD_FLITS_PER_PACKET * WORDS_PER_FLIT


class Packet:
    """One NoC packet: a head flit plus payload flits."""

    __slots__ = ("src", "dst", "payload_words", "sequence", "words_per_flit")

    def __init__(self, src, dst, payload_words, sequence=0,
                 max_words=MAX_WORDS_PER_PACKET,
                 words_per_flit=WORDS_PER_FLIT):
        if payload_words < 0 or payload_words > max_words:
            raise ValueError(
                f"payload must be 0..{max_words} words, "
                f"got {payload_words}"
            )
        self.src = src
        self.dst = dst
        self.payload_words = payload_words
        self.sequence = sequence
        self.words_per_flit = words_per_flit

    @property
    def payload_flits(self):
        words = self.payload_words
        return (words + self.words_per_flit - 1) // self.words_per_flit

    @property
    def flits(self):
        """Total flits: head + payload (a control packet is 1 flit)."""
        return 1 + self.payload_flits

    def is_control(self):
        return self.payload_words == 0

    def __repr__(self):
        return (
            f"Packet({self.src}->{self.dst}, {self.payload_words}w, "
            f"{self.flits}f, #{self.sequence})"
        )


def packetize(src, dst, nwords, params=None):
    """Split an ``nwords`` message into maximal packets.

    A zero-word message still produces one control packet.  ``params``
    (a :class:`repro.platform.NoCParams`) sets the flit geometry; the
    default is the stitch preset's.
    """
    if params is None:
        max_words, words_per_flit = MAX_WORDS_PER_PACKET, WORDS_PER_FLIT
    else:
        max_words, words_per_flit = (
            params.max_words_per_packet, params.words_per_flit
        )
    if nwords < 0:
        raise ValueError("message length must be non-negative")
    if nwords == 0:
        return [Packet(src, dst, 0, sequence=0, max_words=max_words,
                       words_per_flit=words_per_flit)]
    packets = []
    sequence = 0
    remaining = nwords
    while remaining > 0:
        chunk = min(remaining, max_words)
        packets.append(Packet(src, dst, chunk, sequence=sequence,
                              max_words=max_words,
                              words_per_flit=words_per_flit))
        sequence += 1
        remaining -= chunk
    return packets
