"""Packets and flits.

Table II: 1-flit control packets, 5-flit data packets.  A data packet is
one head flit plus up to four 16-byte payload flits, i.e. at most
16 words of payload per packet; longer messages are split by
:func:`packetize`.
"""

FLIT_BYTES = 16
PAYLOAD_FLITS_PER_PACKET = 4
WORDS_PER_FLIT = FLIT_BYTES // 4
MAX_WORDS_PER_PACKET = PAYLOAD_FLITS_PER_PACKET * WORDS_PER_FLIT


class Packet:
    """One NoC packet: a head flit plus payload flits."""

    __slots__ = ("src", "dst", "payload_words", "sequence")

    def __init__(self, src, dst, payload_words, sequence=0):
        if payload_words < 0 or payload_words > MAX_WORDS_PER_PACKET:
            raise ValueError(
                f"payload must be 0..{MAX_WORDS_PER_PACKET} words, "
                f"got {payload_words}"
            )
        self.src = src
        self.dst = dst
        self.payload_words = payload_words
        self.sequence = sequence

    @property
    def payload_flits(self):
        words = self.payload_words
        return (words + WORDS_PER_FLIT - 1) // WORDS_PER_FLIT

    @property
    def flits(self):
        """Total flits: head + payload (a control packet is 1 flit)."""
        return 1 + self.payload_flits

    def is_control(self):
        return self.payload_words == 0

    def __repr__(self):
        return (
            f"Packet({self.src}->{self.dst}, {self.payload_words}w, "
            f"{self.flits}f, #{self.sequence})"
        )


def packetize(src, dst, nwords):
    """Split an ``nwords`` message into maximal packets.

    A zero-word message still produces one control packet.
    """
    if nwords < 0:
        raise ValueError("message length must be non-negative")
    if nwords == 0:
        return [Packet(src, dst, 0, sequence=0)]
    packets = []
    sequence = 0
    remaining = nwords
    while remaining > 0:
        chunk = min(remaining, MAX_WORDS_PER_PACKET)
        packets.append(Packet(src, dst, chunk, sequence=sequence))
        sequence += 1
        remaining -= chunk
    return packets
