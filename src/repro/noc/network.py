"""Inter-core NoC timing models.

Per Table II each hop costs a router-pipeline traversal plus a link
cycle.  For a packet of ``F`` flits over ``H`` hops, the uncontended
pipeline latency is::

    (router_stages + link_cycles) * H + (F - 1)

(the head flit pays the full per-hop pipeline; body flits stream behind
it).  The link-reservation model additionally serializes packets that
compete for the same physical link, so congestion delays are captured
without simulating individual router microarchitecture.

The stage/link/flit numbers come from a
:class:`repro.platform.NoCParams` (default: the stitch preset).
"""

from repro.chaos.injector import NULL_INJECTOR
from repro.noc.packet import packetize
from repro.noc.topology import Mesh
from repro.platform import DEFAULT_PLATFORM
from repro.telemetry import NULL_TELEMETRY

# Derived compatibility aliases — the numbers themselves live in
# repro.platform's presets (single source of truth).
ROUTER_STAGES = DEFAULT_PLATFORM.noc.router_stages
LINK_CYCLES = DEFAULT_PLATFORM.noc.link_cycles


class LinkSchedule:
    """Tracks the next free cycle of one directed link."""

    __slots__ = ("free_at",)

    def __init__(self):
        self.free_at = 0

    def reserve(self, start, flits):
        """Reserve the link for ``flits`` consecutive cycles from ``start``.

        Returns the cycle at which the head flit actually crosses.
        """
        begin = max(start, self.free_at)
        self.free_at = begin + flits
        return begin


class Network:
    """The mesh NoC connecting the cores.

    ``send(src, dst, nwords, time)`` returns ``(arrival, injection_done)``:
    when the last flit reaches ``dst`` and when the source NIC finishes
    injecting (the core is free again after ``injection_done``).
    """

    def __init__(self, mesh=None, contention=True, telemetry=None,
                 params=None, injector=None):
        self.params = params if params is not None else DEFAULT_PLATFORM.noc
        self.injector = injector if injector is not None else NULL_INJECTOR
        self.router_stages = self.params.router_stages
        self.link_cycles = self.params.link_cycles
        self.mesh = mesh if mesh is not None else Mesh.from_params(self.params)
        self.contention = contention
        telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.tracer = telemetry.tracer
        self.timeseries = telemetry.timeseries
        self.recorder = telemetry.recorder
        self._wait_hist = telemetry.stats.histogram("noc.link_wait")
        self._links = {}
        self.packets_sent = 0
        self.flits_sent = 0
        self.total_hops = 0
        # Per-link utilization (flit-cycles the link carried traffic)
        # and queueing delay actually paid beyond the uncontended
        # pipeline, keyed by directed link.
        self.link_busy = {}
        self.link_wait = {}
        self.contention_delay = 0

    def _link(self, src, dst):
        key = (src, dst)
        schedule = self._links.get(key)
        if schedule is None:
            schedule = LinkSchedule()
            self._links[key] = schedule
        return schedule

    def uncontended_latency(self, src, dst, nwords):
        """Analytic latency of a whole message, ignoring contention."""
        hops = self.mesh.hop_count(src, dst)
        packets = packetize(src, dst, nwords, params=self.params)
        total_flits = sum(p.flits for p in packets)
        # Packets of one message stream back-to-back; latency is the head
        # pipeline plus total serialization.
        per_hop = self.router_stages + self.link_cycles
        return per_hop * max(hops, 1) + total_flits - 1

    def send(self, src, dst, nwords, time):
        """Inject a message; returns ``(arrival_cycle, injection_done)``."""
        # Fault injection: a flaky link holds the message ``extra``
        # cycles past the modelled arrival (the NIC itself is unharmed,
        # so injection_done is unaffected).
        extra = (self.injector.link_delay(src, dst, time)
                 if self.injector.armed else 0)
        if src == dst:
            # Local loopback through the NIC: just serialization.
            packets = packetize(src, dst, nwords, params=self.params)
            flits = sum(p.flits for p in packets)
            self.packets_sent += len(packets)
            self.flits_sent += flits
            return time + flits + extra, time + flits
        route = self.mesh.route_links(src, dst)
        hops = len(route)
        arrival = time
        injection_done = time
        cursor = time
        for packet in packetize(src, dst, nwords, params=self.params):
            flits = packet.flits
            self.packets_sent += 1
            self.flits_sent += flits
            self.total_hops += hops
            if self.contention:
                head_time = cursor
                for link_index, link in enumerate(route):
                    schedule = self._link(*link)
                    # Head flit reaches this link after the router pipeline.
                    earliest = head_time + self.router_stages
                    crossed = schedule.reserve(earliest, flits)
                    waited = crossed - earliest
                    self.link_busy[link] = self.link_busy.get(link, 0) + flits
                    if waited:
                        self.link_wait[link] = (
                            self.link_wait.get(link, 0) + waited
                        )
                        self.contention_delay += waited
                    self._wait_hist.observe(waited)
                    if self.recorder.enabled:
                        self.recorder.noc_crossing(link, crossed, flits,
                                                   waited)
                    if self.tracer.enabled:
                        self.tracer.link_reserved(
                            link, src, dst, crossed, flits, waited
                        )
                    if self.timeseries.enabled:
                        self.timeseries.link_flits(link, crossed, flits)
                    head_time = crossed + self.link_cycles
                    if link_index == 0:
                        injection_done = max(injection_done, crossed + flits)
                packet_arrival = head_time + flits - 1
            else:
                per_hop = self.router_stages + self.link_cycles
                packet_arrival = cursor + per_hop * hops + flits - 1
                injection_done = max(injection_done, cursor + flits)
                for link_index, link in enumerate(route):
                    self.link_busy[link] = self.link_busy.get(link, 0) + flits
                    if (self.tracer.enabled or self.timeseries.enabled
                            or self.recorder.enabled):
                        crossed = (cursor + self.router_stages
                                   + per_hop * link_index)
                        if self.recorder.enabled:
                            self.recorder.noc_crossing(link, crossed, flits, 0)
                        if self.tracer.enabled:
                            self.tracer.link_reserved(
                                link, src, dst, crossed, flits, 0
                            )
                        if self.timeseries.enabled:
                            self.timeseries.link_flits(link, crossed, flits)
            arrival = max(arrival, packet_arrival)
            cursor += flits  # next packet streams behind this one
        return arrival + extra, injection_done

    def stats(self):
        """Aggregate NoC statistics (feeds the SystemStats roll-up)."""
        return {
            "packets": self.packets_sent,
            "flits": self.flits_sent,
            "hops": self.total_hops,
            "contention_delay": self.contention_delay,
            "link_busy": dict(self.link_busy),
            "link_wait": dict(self.link_wait),
        }

    def reset_stats(self):
        self.packets_sent = 0
        self.flits_sent = 0
        self.total_hops = 0
        self.link_busy.clear()
        self.link_wait.clear()
        self.contention_delay = 0

    def reset(self):
        self._links.clear()
        self.reset_stats()
