"""Inter-core network-on-chip (the conventional NoC of Table II).

A 2-D mesh with XY dimension-order routing, 5-stage routers and 1-cycle
links.  Control packets are a single flit; data packets carry up to four
16-byte payload flits behind a head flit (1/5-flit control/data packets).

Two timing views are provided and cross-validated in the tests:

* an **uncontended analytic** latency formula, and
* a **link-reservation** model that schedules every packet's flits on
  each link along its route, capturing serialization and contention.
"""

from repro.noc.topology import Mesh
from repro.noc.packet import (
    FLIT_BYTES,
    PAYLOAD_FLITS_PER_PACKET,
    Packet,
    packetize,
)
from repro.noc.network import Network, ROUTER_STAGES, LINK_CYCLES

__all__ = [
    "Mesh",
    "Packet",
    "packetize",
    "FLIT_BYTES",
    "PAYLOAD_FLITS_PER_PACKET",
    "Network",
    "ROUTER_STAGES",
    "LINK_CYCLES",
]
