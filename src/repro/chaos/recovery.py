"""Graceful degradation: re-stitching a plan around a failed fused unit.

When a ``cix`` fault marks a (possibly fused) patch configuration as
dead, the application does not have to fail: the stitcher explored
alternative version selections when it built the plan (the
:class:`repro.provenance.StitchTrace` records them), so the campaign
re-runs :func:`repro.core.stitching.stitch_best` with the failed
option excluded and materializes the surviving plan.  Throughput
degrades to the next-best stitch instead of the run dying.

This module also hosts the target-introspection helpers a seeded
campaign needs to draw *reachable* faults: the real ``(tile, cfg)``
pairs a stitched application executes (:func:`fused_sites`) and the
communicating tile pairs (:func:`app_channels`).

Imported lazily (not from ``repro.chaos``'s package namespace): it
pulls in the simulator stack, which itself imports the injector —
keeping the package ``__init__`` to the leaf modules avoids the cycle.
"""

from repro.chaos.injector import ChaosError
from repro.core.stitching import BASELINE, stitch_best


def fused_sites(evaluator, architecture="Stitch"):
    """Real ``(tile, cfg id)`` pairs the stitched app executes.

    Only non-baseline stages carry a patch configuration; the cfg ids
    come from the compiled program's ``cfg_table``, so a ``cix`` fault
    drawn from this list is guaranteed to be reachable.
    """
    plan = evaluator.plan(architecture)
    compiled = evaluator.compiled_programs()
    sites = []
    for stage in evaluator.app.stages:
        option = plan.assignments[stage.id].option
        if option == BASELINE:
            continue
        program = compiled[stage.id][option].program
        table = getattr(program, "cfg_table", None) or ()
        # cfg ids are indices into the program's config table.
        for cfg in range(len(table)):
            sites.append((plan.tile_of(stage.id), cfg))
    return sites


def app_channels(evaluator, architecture="Stitch"):
    """Communicating ``(src tile, dst tile)`` pairs of the placed app."""
    plan = evaluator.plan(architecture)
    return sorted({
        (plan.tile_of(c.src), plan.tile_of(c.dst))
        for c in evaluator.app.channels
    })


def failed_option(evaluator, plan, tile):
    """The non-baseline option running on ``tile`` (None if baseline)."""
    for stage in evaluator.app.stages:
        assignment = plan.assignments[stage.id]
        if plan.tile_of(stage.id) == tile and assignment.option != BASELINE:
            return assignment.option
    return None


def remap_plan(evaluator, tile, architecture="Stitch", trace=None):
    """Re-stitch around the failed fused unit on ``tile``.

    Returns ``(remapped plan, excluded option name)``.  The failed
    option is excluded globally — conservative (another stage could
    still use an undamaged instance) but safe, and the stitcher's
    version selection finds the best surviving assignment.  Raises
    :class:`~repro.chaos.ChaosError` when the tile runs no fused
    option (nothing to route around).
    """
    plan = evaluator.plan(architecture)
    failed = failed_option(evaluator, plan, tile)
    if failed is None:
        raise ChaosError(
            f"tile {tile} runs no fused option; nothing to remap around"
        )
    tables = evaluator.cycle_tables()
    allowed = frozenset(
        name for table in tables.values() for name in table
        if name != BASELINE
    ) - {failed}
    remapped = stitch_best(
        f"{evaluator.app.name}/{architecture}/remap-{failed}",
        tables, evaluator.placement, allowed=allowed, trace=trace,
    )
    return remapped, failed
