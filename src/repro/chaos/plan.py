"""Fault-injection plans: what to break, where, and how to recover.

An :class:`InjectionPlan` is the frozen, JSON-round-trippable
description of one perturbed run — a tuple of :class:`Fault` records
plus the :class:`RecoveryParams` governing detection and repair.  Like
:class:`repro.platform.PlatformConfig` it validates itself
(:meth:`issues` / :meth:`validate`), serializes to a plain dict, and
reconstructs bit-identically from that dict, so campaign reports carry
their full provenance and a seeded campaign is reproducible from its
JSON alone.

Fault sites (``Fault.site``):

``reg``
    Flip bit ``bit`` of register ``reg`` on ``tile`` at the first
    injector boundary at or after ``cycle``.
``spm`` / ``dram``
    Flip bit ``bit`` of the word at ``addr`` in the tile's scratchpad /
    private DRAM at ``cycle`` (architectural perturbation, untimed).
``freeze``
    The core on ``tile`` stops retiring instructions at ``cycle`` and
    never resumes (a hung tile; peers must detect it).
``cix``
    The (possibly fused) patch configuration ``cfg`` on ``tile`` is
    broken: executing it raises :class:`~repro.chaos.CixStallError`.
``link``
    The ``index``-th message injected on the directed tile pair
    ``src -> dst``: with ``delay > 0`` its arrival is late by that many
    cycles (a retransmitted flit); with ``delay == 0`` the payload is
    dropped on the floor (the NoC still burns the cycles, the words
    never arrive).
``channel``
    Flip bit ``bit`` of word ``word`` of the ``index``-th message on
    the MPI channel ``src -> dst`` (corruption in flight, caught by the
    checksum side-band when recovery is on).

Triggers are exact and deterministic: the same plan over the same
workload injects at the same simulated cycle/message every time, on
every execution engine.
"""

import dataclasses
import json
import random

SITES = ("reg", "spm", "dram", "freeze", "cix", "link", "channel")

#: Sites triggered by a core-local cycle boundary.
CORE_SITES = ("reg", "spm", "dram", "freeze")
#: Sites triggered by fabric traffic on a directed tile pair.
FABRIC_SITES = ("link", "channel")


class InjectionPlanError(ValueError):
    """An :class:`InjectionPlan` (or one of its faults) is inconsistent."""


@dataclasses.dataclass(frozen=True)
class Fault:
    """One injected fault; field meaning depends on ``site`` (see module
    docstring).  Unused fields stay at their defaults so every fault
    serializes with the same compact shape."""

    site: str
    tile: int = 0
    cycle: int = 0
    reg: int = 1
    addr: int = 0
    bit: int = 0
    cfg: int = 0
    src: int = 0
    dst: int = 0
    index: int = 0
    word: int = 0
    delay: int = 0

    def issues(self, loc):
        found = []
        if self.site not in SITES:
            found.append(("C001", loc, f"unknown fault site {self.site!r}"))
            return found
        if not 0 <= self.bit < 32:
            found.append(("C002", loc, f"bit {self.bit} outside 0..31"))
        if self.tile < 0:
            found.append(("C003", loc, f"negative tile {self.tile}"))
        if self.cycle < 0:
            found.append(("C003", loc, f"negative trigger cycle {self.cycle}"))
        if self.site in ("spm", "dram") and self.addr % 4:
            found.append(
                ("C004", loc, f"unaligned word address {self.addr:#x}")
            )
        if self.site in FABRIC_SITES:
            if self.src < 0 or self.dst < 0:
                found.append(("C003", loc, "negative src/dst tile"))
            if self.index < 0:
                found.append(("C003", loc, f"negative index {self.index}"))
        if self.site == "link" and self.delay < 0:
            found.append(("C003", loc, f"negative delay {self.delay}"))
        return found

    def to_dict(self):
        payload = {"site": self.site}
        for field in dataclasses.fields(Fault):
            if field.name == "site":
                continue
            value = getattr(self, field.name)
            if value != field.default:
                payload[field.name] = value
        return payload

    @classmethod
    def from_dict(cls, payload):
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise InjectionPlanError(f"unknown Fault field(s): {unknown}")
        return cls(**payload)


@dataclasses.dataclass(frozen=True)
class RecoveryParams:
    """Detection & repair policy knobs.

    ``recv_timeout``
        Watchdog deadline (simulated cycles) on a blocked RECV; 0
        disables the watchdog and leaves only round-end deadlock
        detection.
    ``max_retries`` / ``retry_backoff``
        Bounded retransmission of corrupted channel words via the
        checksum side-band: attempt *i* costs ``retry_backoff * 2**(i-1)``
        receiver cycles; more corrupted words than retries fails loud.
        ``max_retries == 0`` disables the side-band entirely (corrupted
        words are delivered silently).
    ``ecc``
        Scrub-on-trigger ECC over register file, SPM and DRAM: a bit
        flip is detected and corrected at its injection boundary for
        ``ecc_penalty`` core cycles.
    ``remap``
        Graceful degradation: re-stitch the application plan around a
        failed fused unit using the alternatives the stitcher recorded.
    """

    recv_timeout: int = 0
    max_retries: int = 0
    retry_backoff: int = 0
    ecc: bool = False
    ecc_penalty: int = 12
    remap: bool = False

    @classmethod
    def full(cls):
        """Every policy armed (the campaign's recovery-on mode)."""
        return cls(recv_timeout=50_000, max_retries=3, retry_backoff=16,
                   ecc=True, remap=True)

    @classmethod
    def none(cls):
        """Every policy disarmed (faults land unmitigated)."""
        return cls()

    def issues(self, loc):
        found = []
        for name in ("recv_timeout", "max_retries", "retry_backoff",
                     "ecc_penalty"):
            if getattr(self, name) < 0:
                found.append(("C005", loc, f"negative {name}"))
        return found

    def to_dict(self):
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload):
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise InjectionPlanError(
                f"unknown RecoveryParams field(s): {unknown}"
            )
        return cls(**payload)


@dataclasses.dataclass(frozen=True)
class InjectionPlan:
    """A named, seeded set of faults plus the recovery policy."""

    name: str = "plan"
    seed: int = 0
    faults: tuple = ()
    recovery: RecoveryParams = dataclasses.field(
        default_factory=RecoveryParams
    )

    @property
    def armed(self):
        """True when the plan injects anything at all.

        An unarmed plan must leave every run bit-identical to a clean
        one (rule V1101) — in particular the fast execution engine
        stays eligible.
        """
        return bool(self.faults)

    def by_site(self, *sites):
        return tuple(f for f in self.faults if f.site in sites)

    def issues(self):
        """All inconsistencies as ``(code, loc, message)`` tuples."""
        found = []
        if not self.name:
            found.append(("C006", "plan", "empty plan name"))
        for i, fault in enumerate(self.faults):
            found.extend(fault.issues(f"fault[{i}]"))
        found.extend(self.recovery.issues("recovery"))
        return found

    def validate(self):
        issues = self.issues()
        if issues:
            detail = "; ".join(f"{loc}: {msg}" for _, loc, msg in issues)
            raise InjectionPlanError(
                f"invalid injection plan {self.name!r}: {detail}"
            )
        return self

    # -- serialization -------------------------------------------------------

    def to_dict(self):
        return {
            "name": self.name,
            "seed": self.seed,
            "faults": [fault.to_dict() for fault in self.faults],
            "recovery": self.recovery.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload, validate=True):
        known = {"name", "seed", "faults", "recovery"}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise InjectionPlanError(
                f"unknown InjectionPlan field(s): {unknown}"
            )
        plan = cls(
            name=payload.get("name", "plan"),
            seed=payload.get("seed", 0),
            faults=tuple(
                Fault.from_dict(f) for f in payload.get("faults", ())
            ),
            recovery=RecoveryParams.from_dict(payload.get("recovery", {})),
        )
        return plan.validate() if validate else plan

    def to_json(self):
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text, validate=True):
        return cls.from_dict(json.loads(text), validate=validate)


def random_fault(rng, sites, tiles=16, max_cycle=20_000,
                 spm_base=0x1000_0000, spm_bytes=4096, dram_words=256,
                 cix_sites=(), channels=()):
    """Draw one deterministic :class:`Fault` from ``rng``.

    ``cix_sites`` is the list of real ``(tile, cfg)`` pairs a stitched
    application actually executes (see
    :func:`repro.chaos.recovery.fused_sites`); ``cix`` draws land on
    one of them so the fault is guaranteed to be reachable.  Likewise
    ``channels`` — real communicating ``(src, dst)`` tile pairs — aims
    link/channel faults at traffic that actually flows (without it they
    land on uniformly random pairs and mostly stay untriggered).
    """
    site = rng.choice([s for s in sites if s != "cix" or cix_sites])
    tile = rng.randrange(tiles)
    cycle = rng.randrange(max_cycle)
    bit = rng.randrange(32)
    if site == "reg":
        return Fault("reg", tile=tile, cycle=cycle, bit=bit,
                     reg=rng.randrange(1, 16))
    if site == "spm":
        addr = spm_base + 4 * rng.randrange(spm_bytes // 4)
        return Fault("spm", tile=tile, cycle=cycle, bit=bit, addr=addr)
    if site == "dram":
        return Fault("dram", tile=tile, cycle=cycle, bit=bit,
                     addr=4 * rng.randrange(dram_words))
    if site == "freeze":
        return Fault("freeze", tile=tile, cycle=cycle)
    if site == "cix":
        tile, cfg = cix_sites[rng.randrange(len(cix_sites))]
        return Fault("cix", tile=tile, cfg=cfg)
    if channels:
        src, dst = channels[rng.randrange(len(channels))]
    else:
        src = rng.randrange(tiles)
        dst = rng.randrange(tiles)
    index = rng.randrange(4)
    if site == "link":
        delay = rng.choice([0, rng.randrange(1, 64)])
        return Fault("link", src=src, dst=dst, index=index, delay=delay)
    return Fault("channel", src=src, dst=dst, index=index,
                 word=rng.randrange(8), bit=bit)


def random_plan(seed, n_faults=1, sites=SITES, name=None, recovery=None,
                **kwargs):
    """A deterministic seeded plan: same arguments ⇒ identical plan."""
    rng = random.Random(seed)
    faults = tuple(
        random_fault(rng, sites, **kwargs) for _ in range(n_faults)
    )
    return InjectionPlan(
        name=name if name is not None else f"random-{seed}",
        seed=seed,
        faults=faults,
        recovery=recovery if recovery is not None else RecoveryParams(),
    ).validate()
