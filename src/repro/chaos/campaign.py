"""Seeded fault-injection campaigns with differential classification.

A campaign run is a sweep of *chaos points* — one perturbed execution
each — fanned out through :func:`repro.sweep.runner.run_sweep` (the
same order-preserving process pool as every other sweep, so parallel
and serial campaign reports are byte-identical by construction).

Every point computes its own clean **golden run** in-process, injects
one seeded fault plan, and classifies the perturbed run against the
golden output:

``masked``
    The run completed with bit-identical output and no recovery was
    needed (the fault landed on dead state, or never triggered).
``detected_recovered``
    A detection policy caught the fault and a recovery policy repaired
    it (ECC scrub, channel retry, plan remap); output matches golden.
``detected_failed``
    The fault was detected but the run still failed — loudly (watchdog,
    deadlock, stall, corruption past the retry budget, an execution
    trap) or with wrong output despite the detection.
``sdc``
    Silent data corruption: the run completed, nothing detected
    anything, and the output differs from golden.  The outcome a
    resilient design must drive to zero.

Workload dict (the ``"chaos"`` sweep kind)::

    {"kind": "chaos", "target": "fir" | "APP1", "seed": 7,
     "faults": 1, "recovery": "full" | "none",
     "sites": [...], "engine": "auto", "plan": {...explicit...}}

``target`` names a Figure-11 kernel (single-tile run, core-site faults)
or one of APP1-4 (16-tile stitched co-simulation, every fault site).
"""

import json
import zlib

from repro.chaos.injector import CixStallError, Injector
from repro.chaos.plan import (
    CORE_SITES,
    SITES,
    InjectionPlan,
    RecoveryParams,
    random_plan,
)
from repro.platform import DEFAULT_PLATFORM, PlatformConfig

OUTCOMES = ("masked", "detected_recovered", "detected_failed", "sdc")

#: Default co-simulated items per app point (matches AppEvaluator).
APP_ITEMS = 2


def _checksum(value):
    """Stable checksum of an output structure (ints/sequences)."""
    return zlib.crc32(repr(value).encode("utf-8")) & 0xFFFFFFFF


def _recovery(workload):
    mode = workload.get("recovery", "full")
    if isinstance(mode, dict):
        return RecoveryParams.from_dict(mode)
    if mode == "full":
        return RecoveryParams.full()
    if mode == "none":
        return RecoveryParams.none()
    raise ValueError(f"unknown recovery mode {mode!r}")


def classify(events, loud, matches):
    """Map one run's evidence to its outcome class.

    ``events`` is the injector's event log, ``loud`` the loud-failure
    description (None when the run completed), ``matches`` whether the
    output is bit-identical to the golden run.
    """
    if loud is not None:
        return "detected_failed"
    if matches:
        recovered = any(e["kind"] == "recover" for e in events)
        return "detected_recovered" if recovered else "masked"
    detected = any(e["kind"] == "detect" for e in events)
    return "detected_failed" if detected else "sdc"


# -- kernel points -----------------------------------------------------------


def _kernel_run(config, name, engine, injector):
    from repro.cpu.core import Core
    from repro.mem.hierarchy import MemorySystem
    from repro.workloads import make_kernel

    kernel = make_kernel(name, seed=1)
    memory = MemorySystem(config.mem)
    core = Core(kernel.program, memory, params=config.core, engine=engine,
                injector=injector)
    kernel.setup(core)
    outcome = core.run(max_instructions=20_000_000)
    return kernel.result(core), outcome, core


def _kernel_point(config, workload):
    from repro.cpu.core import STOP_HALT

    name = workload["target"]
    engine = workload.get("engine", "auto")
    golden, outcome, core = _kernel_run(config, name, engine, None)
    if outcome.reason != STOP_HALT:
        raise RuntimeError(
            f"golden run of kernel {name!r} did not halt ({outcome.reason})"
        )
    plan = _point_plan(
        workload, sites=CORE_SITES, tiles=1, max_cycle=max(core.cycles, 1),
        spm_base=config.mem.spm_base, spm_bytes=config.mem.spm_bytes,
        dram_words=min(config.mem.dram_size_bytes // 4, 4096),
    )
    injector = Injector(plan)
    loud = None
    result = None
    try:
        result, outcome, _ = _kernel_run(config, name, engine, injector)
        if outcome.reason != STOP_HALT:
            loud = f"NoHalt: kernel stopped with reason {outcome.reason!r}"
    except Exception as exc:  # loud failure: trap, stall, budget, ...
        loud = f"{type(exc).__name__}: {exc}"
    matches = result == golden
    return _metrics(workload, plan, injector, loud, matches,
                    golden_cycles=core.cycles,
                    golden_checksum=_checksum(golden),
                    output_checksum=_checksum(result) if loud is None
                    else None)


# -- application points ------------------------------------------------------


def _app_outputs(system, plan, app):
    return {
        stage.id: stage.kernel.result(system.cores[plan.tile_of(stage.id)])
        for stage in app.stages
    }


def _app_point(config, workload):
    from repro.chaos.recovery import app_channels, fused_sites, remap_plan
    from repro.provenance import StitchTrace
    from repro.sim.baselines import ARCH_STITCH, AppEvaluator
    from repro.workloads.apps import APP_FACTORIES

    target = workload["target"]
    app = APP_FACTORIES[target]()
    evaluator = AppEvaluator(app, platform=config)
    items = workload.get("items", APP_ITEMS)

    golden_system, stitch = evaluator.build_system(ARCH_STITCH, items=items)
    golden_results = golden_system.run()
    golden = _app_outputs(golden_system, stitch, app)
    golden_makespan = golden_system.makespan(golden_results)

    plan = _point_plan(
        workload, sites=SITES, tiles=evaluator.placement.mesh.num_tiles,
        max_cycle=max(golden_makespan, 1),
        spm_base=config.mem.spm_base, spm_bytes=config.mem.spm_bytes,
        dram_words=min(config.mem.dram_size_bytes // 4, 4096),
        cix_sites=fused_sites(evaluator, ARCH_STITCH),
        channels=app_channels(evaluator, ARCH_STITCH),
    )
    injector = Injector(plan)
    loud = None
    remapped = None
    outputs = None
    try:
        system, splan = evaluator.build_system(ARCH_STITCH, items=items,
                                               injector=injector)
        system.run()
        outputs = _app_outputs(system, splan, app)
    except CixStallError as exc:
        if plan.recovery.remap:
            # Graceful degradation: exclude the failed option and
            # materialize the best surviving stitch (the alternatives
            # the StitchTrace records).
            trace = StitchTrace(f"{target}/remap")
            try:
                degraded, excluded = remap_plan(evaluator, exc.tile,
                                                ARCH_STITCH, trace=trace)
                system, splan = evaluator.build_system(
                    ARCH_STITCH, items=items, plan=degraded,
                )
                system.run()
                outputs = _app_outputs(system, splan, app)
                remapped = {
                    "excluded": excluded,
                    "bottleneck_cycles": degraded.bottleneck_cycles(),
                }
                injector.log_recover("cix", exc.tile, exc.cycle,
                                     excluded=excluded)
            except Exception as inner:
                loud = f"{type(inner).__name__}: {inner}"
        else:
            loud = f"{type(exc).__name__}: {exc}"
    except Exception as exc:  # watchdog, deadlock, corruption, trap, ...
        loud = f"{type(exc).__name__}: {exc}"
    matches = outputs == golden
    return _metrics(workload, plan, injector, loud, matches,
                    golden_cycles=golden_makespan,
                    golden_checksum=_checksum(golden),
                    output_checksum=_checksum(outputs) if loud is None
                    else None,
                    remapped=remapped)


# -- shared plumbing ---------------------------------------------------------


def _point_plan(workload, sites, **kwargs):
    """Resolve the point's plan: explicit dict, or a seeded draw."""
    explicit = workload.get("plan")
    if explicit is not None:
        return InjectionPlan.from_dict(explicit)
    requested = workload.get("sites")
    if requested:
        chosen = tuple(s for s in sites if s in set(requested))
        if not chosen:
            raise ValueError(
                f"no requested site in {sorted(requested)} is valid for "
                f"this target (valid: {list(sites)})"
            )
        sites = chosen
    return random_plan(
        workload.get("seed", 0),
        n_faults=workload.get("faults", 1),
        sites=sites,
        recovery=_recovery(workload),
        **kwargs,
    )


def _metrics(workload, plan, injector, loud, matches, golden_cycles,
             golden_checksum, output_checksum, remapped=None):
    outcome = classify(injector.events, loud, matches)
    metrics = {
        "target": workload["target"],
        "outcome": outcome,
        "plan": plan.to_dict(),
        "events": [dict(e) for e in injector.events],
        "faults_triggered": injector.triggered(),
        "faults_untriggered": injector.untriggered(),
        "recovery_cycles": injector.recovery_cycles,
        "golden_cycles": golden_cycles,
        "golden_checksum": golden_checksum,
        "output_checksum": output_checksum,
    }
    if loud is not None:
        metrics["loud"] = loud
    if remapped is not None:
        metrics["remapped"] = remapped
    return metrics


def run_chaos_point(config, workload):
    """Sweep-runner entry for one ``"chaos"`` workload point.

    Pure function of ``(config, workload)`` — both golden and perturbed
    runs happen in-process, so parallel fan-out stays deterministic.
    Returns ``(metrics, stats)`` like every other workload kind.
    """
    from repro.workloads.apps import APP_FACTORIES
    from repro.workloads.suite import KERNEL_FACTORIES

    target = workload.get("target")
    if target in APP_FACTORIES:
        return _app_point(config, workload), None
    if target in KERNEL_FACTORIES:
        return _kernel_point(config, workload), None
    raise ValueError(
        f"unknown chaos target {target!r} (kernels: "
        f"{sorted(KERNEL_FACTORIES)}; apps: {sorted(APP_FACTORIES)})"
    )


# -- campaigns ---------------------------------------------------------------


def campaign_points(targets, faults, seed, recovery="full", config=None,
                    sites=None):
    """The sweep points of one seeded campaign.

    ``faults`` single-fault points round-robin over ``targets``; point
    *i* draws its plan from ``seed + i``, so the whole campaign is a
    pure function of ``(targets, faults, seed, recovery, config)``.
    """
    config = config if config is not None else DEFAULT_PLATFORM
    if isinstance(config, dict):
        config = PlatformConfig.from_dict(config)
    targets = list(targets)
    if not targets:
        raise ValueError("campaign needs at least one target")
    config_dict = config.to_dict()
    points = []
    for i in range(faults):
        target = targets[i % len(targets)]
        workload = {
            "kind": "chaos",
            "target": target,
            "seed": seed + i,
            "faults": 1,
            "recovery": recovery,
        }
        if sites:
            workload["sites"] = sorted(sites)
        points.append({
            "id": f"{target}/{seed + i}",
            "config": config_dict,
            "workload": workload,
        })
    return points


def run_campaign(targets, faults, seed, recovery="full", workers=None,
                 config=None, sites=None):
    """Run one campaign; returns the classified report payload."""
    from repro.sweep.runner import run_sweep

    points = campaign_points(targets, faults, seed, recovery=recovery,
                             config=config, sites=sites)
    payload = run_sweep(points, workers=workers)
    return campaign_report(payload, targets=targets, seed=seed,
                           recovery=recovery)


def campaign_report(payload, targets=None, seed=None, recovery=None):
    """Attach the campaign tally to a sweep payload of chaos points."""
    outcomes = {name: 0 for name in OUTCOMES}
    triggered = untriggered = recovery_cycles = 0
    for record in payload["results"]:
        metrics = record.get("metrics")
        if metrics is None:
            continue
        outcomes[metrics["outcome"]] += 1
        triggered += metrics["faults_triggered"]
        untriggered += metrics["faults_untriggered"]
        recovery_cycles += metrics["recovery_cycles"]
    report = dict(payload)
    report["campaign"] = {
        "targets": sorted(set(targets)) if targets is not None else None,
        "seed": seed,
        "recovery": recovery,
        "outcomes": outcomes,
        "faults_triggered": triggered,
        "faults_untriggered": untriggered,
        "recovery_cycles": recovery_cycles,
        "sdc": outcomes["sdc"],
    }
    return report


def campaign_to_json(report):
    """Canonical JSON rendering (what serial-vs-parallel diffs compare)."""
    return json.dumps(report, indent=2, sort_keys=True) + "\n"
