"""The fault injector: the null-object hook surface of the chaos layer.

Components hold the shared :data:`NULL_INJECTOR` when injection is off,
exactly like :data:`~repro.telemetry.NULL_TRACER`: the disabled path
costs at most one attribute check per call site, and the core hot loops
pay a single ``cycles >= _inj_next`` comparison pinned at ``+inf``
(the interval-sampling trick of :class:`repro.telemetry.TimeSeries`).
Arming the injector forces a core's fast engine to fall back to the
instrumented loop transparently — the fast loop carries no hooks and
stays untouched, so the clean path keeps its speed.

Every consequence of an armed injector is logged as one event dict::

    {"kind": "fault"|"detect"|"recover", "site": ..., "tile": ...,
     "cycle": ..., ...detail..., ["cycles_cost": N]}

and mirrored into telemetry (Stats counters under ``chaos.*``, typed
Tracer instants, a ``chaos_event`` on the critpath recorder) so a
campaign is attributable end to end.  Rules V1100-V1103 reconcile the
event log against the plan and the run outcome.
"""

import math

from repro.chaos.plan import InjectionPlan
from repro.telemetry import NULL_TELEMETRY


def _checksum_words(values):
    """The side-band word checksum (a tiny xor/rotate accumulator)."""
    acc = 0
    for value in values:
        acc = ((acc << 5 | acc >> 27) ^ (value & 0xFFFFFFFF)) & 0xFFFFFFFF
    return acc


class ChaosError(RuntimeError):
    """Base class of loud fault detections raised by recovery policies."""


class ChannelCorruptionError(ChaosError):
    """Corrupted channel words outlived the bounded retry budget.

    ``snapshot`` mirrors the deadlock vocabulary: the receiving tile,
    the peer, and the words that failed verification.
    """

    def __init__(self, message, snapshot=None):
        super().__init__(message)
        self.snapshot = snapshot if snapshot is not None else {}


class CixStallError(ChaosError):
    """A (possibly fused) patch configuration is stalled/failed.

    Carries the tile and config id so graceful degradation can re-stitch
    the plan around the failed unit.
    """

    def __init__(self, tile, cfg, cycle):
        super().__init__(
            f"tile {tile}: cix cfg {cfg} stalled at cycle {cycle} "
            f"(failed fused unit)"
        )
        self.tile = tile
        self.cfg = cfg
        self.cycle = cycle


class Injector:
    """Applies one :class:`InjectionPlan` to one run, deterministically.

    One injector instance belongs to one run: it keeps per-channel
    message counters and the checksum side-band, so reusing an instance
    across runs would misalign triggers.
    """

    enabled = True

    def __init__(self, plan, telemetry=None):
        if isinstance(plan, dict):
            plan = InjectionPlan.from_dict(plan)
        self.plan = plan.validate()
        self.recovery = plan.recovery
        telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._stats = telemetry.stats
        self._tracer = telemetry.tracer
        self._recorder = telemetry.recorder
        self.events = []
        self.recovery_cycles = 0
        # site "cix": {tile: frozenset(cfg ids)}
        self._cix = {}
        for fault in plan.by_site("cix"):
            self._cix.setdefault(fault.tile, set()).add(fault.cfg)
        self._cix = {t: frozenset(c) for t, c in self._cix.items()}
        # core-boundary faults: {tile: [faults sorted by trigger cycle]}
        self._core_faults = {}
        for fault in plan.by_site("reg", "spm", "dram", "freeze"):
            self._core_faults.setdefault(fault.tile, []).append(fault)
        for faults in self._core_faults.values():
            faults.sort(key=lambda f: f.cycle)
        # fabric faults: {(src, dst): {index: [faults]}}
        self._link = {}
        self._channel = {}
        for fault in plan.by_site("link"):
            pair = self._link.setdefault((fault.src, fault.dst), {})
            pair.setdefault(fault.index, []).append(fault)
        for fault in plan.by_site("channel"):
            pair = self._channel.setdefault((fault.src, fault.dst), {})
            pair.setdefault(fault.index, []).append(fault)
        self._msg_count = {}       # (src, dst) -> messages injected so far
        self._pkt_count = {}       # (src, dst) -> network sends so far
        # The checksum side-band is a word FIFO parallel to the MPI
        # channel's own (receives pop words, not messages, so the truth
        # stream must align word-for-word with the corrupted stream).
        self._sideband = {}        # (src, dst) -> [true words]
        self._fired = 0

    @property
    def armed(self):
        return self.plan.armed

    # -- event log -----------------------------------------------------------

    def _log(self, kind, site, tile, cycle, **detail):
        event = {"kind": kind, "site": site, "tile": tile, "cycle": cycle}
        event.update(detail)
        self.events.append(event)
        if self._stats.enabled:
            self._stats.add(f"chaos.{kind}")
            self._stats.add(f"chaos.{kind}.{site}")
        if self._tracer.enabled:
            if kind == "fault":
                self._tracer.fault(tile, site, cycle, **detail)
            elif kind == "detect":
                self._tracer.fault_detected(tile, site, cycle, **detail)
            else:
                self._tracer.fault_recovered(tile, site, cycle, **detail)
        if self._recorder.enabled:
            self._recorder.chaos_event(tile, kind, site, cycle)
        return event

    def log_detect(self, site, tile, cycle, **detail):
        """Detection reported by an outside policy (watchdog, deadlock)."""
        return self._log("detect", site, tile, cycle, **detail)

    def log_recover(self, site, tile, cycle, **detail):
        """Recovery performed by an outside policy (plan remap)."""
        return self._log("recover", site, tile, cycle, **detail)

    def triggered(self):
        """How many of the plan's faults actually fired."""
        return self._fired

    def untriggered(self):
        """Faults whose trigger never occurred in the run (⇒ masked)."""
        return len(self.plan.faults) - self._fired

    def report(self):
        """The JSON-shaped account of this run's injection activity."""
        return {
            "plan": self.plan.to_dict(),
            "events": [dict(e) for e in self.events],
            "faults_triggered": self.triggered(),
            "faults_untriggered": self.untriggered(),
            "recovery_cycles": self.recovery_cycles,
        }

    # -- core-side hooks -----------------------------------------------------

    def attach_core(self, core):
        """Wire a core: set its first boundary and stalled-cfg set."""
        core._inj_cix = self._cix.get(core.core_id)
        faults = self._core_faults.get(core.core_id)
        if faults:
            core._inj_next = faults[0].cycle
        else:
            core._inj_next = math.inf

    def fire_core(self, core):
        """Apply every due core-site fault; returns the next boundary.

        Called by the execution engines when ``cycles >= _inj_next``;
        fault application is architectural (no cycle charged) except
        for ECC scrubs, which charge ``recovery.ecc_penalty`` core
        cycles per corrected flip.
        """
        faults = self._core_faults.get(core.core_id, ())
        while faults and faults[0].cycle <= core.cycles:
            fault = faults.pop(0)
            self._fired += 1
            now = core.cycles
            if fault.site == "freeze":
                core.frozen = True
                self._log("fault", "freeze", core.core_id, now)
                continue
            if fault.site == "reg":
                index = fault.reg % len(core.regs)
                old = core.regs[index]
                restore = old
                core.regs[index] = _flip(old, fault.bit)
                detail = {"reg": index, "bit": fault.bit}
            elif fault.site == "spm":
                spm = core.memory.spm
                if spm is None or not spm.contains(fault.addr):
                    self._log("fault", "spm", core.core_id, now,
                              addr=fault.addr, bit=fault.bit, applied=False)
                    continue
                restore = spm.dump_words(fault.addr, 1)[0]
                spm.load_words(fault.addr, [_flip(restore, fault.bit)])
                detail = {"addr": fault.addr, "bit": fault.bit}
            else:  # dram
                dram = core.memory.dram
                if not 0 <= fault.addr < dram.size_bytes:
                    self._log("fault", "dram", core.core_id, now,
                              addr=fault.addr, bit=fault.bit, applied=False)
                    continue
                restore = dram.dump_words(fault.addr, 1)[0]
                dram.load_words(fault.addr, [_flip(restore, fault.bit)])
                detail = {"addr": fault.addr, "bit": fault.bit}
            self._log("fault", fault.site, core.core_id, now, **detail)
            if self.recovery.ecc:
                # Scrub-on-trigger ECC: detect and correct in place,
                # charging the scrub penalty to the core's clock.
                self._log("detect", fault.site, core.core_id, now, **detail)
                if fault.site == "reg":
                    core.regs[detail["reg"]] = restore
                elif fault.site == "spm":
                    core.memory.spm.load_words(fault.addr, [restore])
                else:
                    core.memory.dram.load_words(fault.addr, [restore])
                penalty = self.recovery.ecc_penalty
                core.cycles += penalty
                self.recovery_cycles += penalty
                self._log("recover", fault.site, core.core_id, core.cycles,
                          cycles_cost=penalty, **detail)
        return faults[0].cycle if faults else math.inf

    def cix_stall(self, tile, cfg, cycle):
        """A stalled config was executed: log the detection and fail loud."""
        self._fired += 1
        self._log("fault", "cix", tile, cycle, cfg=cfg)
        self._log("detect", "cix", tile, cycle, cfg=cfg)
        raise CixStallError(tile, cfg, cycle)

    # -- NoC-side hook -------------------------------------------------------

    def link_delay(self, src, dst, now):
        """Extra arrival cycles for this ``src -> dst`` network send."""
        pair = self._link.get((src, dst))
        if pair is None:
            return 0
        index = self._pkt_count.get((src, dst), 0)
        self._pkt_count[(src, dst)] = index + 1
        extra = 0
        for fault in pair.pop(index, ()):
            if fault.delay > 0:
                self._fired += 1
                extra += fault.delay
                self._log("fault", "link", dst, now, src=src,
                          index=index, delay=fault.delay)
        return extra

    # -- fabric-side hooks ---------------------------------------------------

    def outbound(self, src, dst, values, now):
        """Perturb one injected message; returns ``(values, dropped)``.

        Maintains the checksum side-band for watched channels (those
        with channel faults, when retries are enabled) so the receive
        side can verify and re-fetch the true words.
        """
        key = (src, dst)
        index = self._msg_count.get(key, 0)
        self._msg_count[key] = index + 1
        for fault in self._link.get(key, {}).get(index, ()):
            if fault.delay == 0:
                self._fired += 1
                self._log("fault", "link", dst, now, src=src, index=index,
                          dropped=len(values))
                return values, True
        channel_faults = self._channel.get(key)
        if channel_faults is None:
            return values, False
        if self.recovery.max_retries > 0:
            self._sideband.setdefault(key, []).extend(values)
        for fault in channel_faults.pop(index, ()):
            self._fired += 1
            if not values:
                self._log("fault", "channel", dst, now, src=src,
                          index=index, applied=False)
                continue
            word = fault.word % len(values)
            values = list(values)
            values[word] = _flip(values[word], fault.bit)
            self._log("fault", "channel", dst, now, src=src, index=index,
                      word=word, bit=fault.bit)
        return values, False

    def inbound(self, src, dst, values, finish):
        """Verify one received message against the checksum side-band.

        Corrupted words are re-fetched with bounded exponential backoff
        (attempt *i* costs ``retry_backoff * 2**(i-1)`` receiver
        cycles); more corrupted words than ``max_retries`` raises
        :class:`ChannelCorruptionError`.
        """
        queue = self._sideband.get((src, dst))
        if not queue:
            return values, finish
        truth = queue[:len(values)]
        del queue[:len(values)]
        if _checksum_words(values) == _checksum_words(truth):
            return values, finish
        corrupted = [i for i, (got, want) in enumerate(zip(values, truth))
                     if got != want]
        self._log("detect", "channel", dst, finish, src=src,
                  words=list(corrupted))
        if len(corrupted) > self.recovery.max_retries:
            raise ChannelCorruptionError(
                f"tile {dst}: {len(corrupted)} corrupted word(s) from tile "
                f"{src} exceed the {self.recovery.max_retries}-retry budget",
                snapshot={
                    "tile": dst, "waiting_on": src,
                    "words_corrupted": len(corrupted),
                    "cycles": finish,
                },
            )
        cost = sum(
            self.recovery.retry_backoff * (1 << attempt)
            for attempt in range(len(corrupted))
        )
        self.recovery_cycles += cost
        self._log("recover", "channel", dst, finish + cost, src=src,
                  words=list(corrupted), cycles_cost=cost)
        return list(truth), finish + cost


def _flip(value, bit):
    flipped = (value & 0xFFFFFFFF) ^ (1 << bit)
    return flipped - 0x100000000 if flipped & 0x80000000 else flipped


class NullInjector:
    """Disabled injector: every hook is a no-op."""

    enabled = False
    armed = False
    events = ()
    recovery_cycles = 0

    def attach_core(self, core):
        core._inj_cix = None
        core._inj_next = math.inf

    def fire_core(self, core):
        return math.inf

    def link_delay(self, src, dst, now):
        return 0

    def outbound(self, src, dst, values, now):
        return values, False

    def inbound(self, src, dst, values, finish):
        return values, finish

    def log_detect(self, site, tile, cycle, **detail):
        pass

    log_recover = log_detect

    def triggered(self):
        return 0

    def untriggered(self):
        return 0


NULL_INJECTOR = NullInjector()


def ensure_injector(value, telemetry=None):
    """Normalize an ``injector=`` argument (None/False -> disabled).

    A plan (or its dict form) is wrapped in a fresh :class:`Injector`
    bound to ``telemetry``; an existing injector passes through as-is.
    """
    if value is None or value is False:
        return NULL_INJECTOR
    if isinstance(value, (InjectionPlan, dict)):
        return Injector(value, telemetry=telemetry)
    return value
