"""Deterministic fault injection and resilience policies.

The chaos layer perturbs a run the way the telemetry layer observes
one: every component holds a null-object :data:`NULL_INJECTOR` when
injection is off, the core hot loops pay a single pinned-at-infinity
cycle comparison, and an armed injector transparently forces the fast
execution engine back to the instrumented loop.

* :mod:`repro.chaos.plan` — :class:`InjectionPlan`: the frozen,
  JSON-round-trippable description of what to break (site, trigger,
  payload) and how to recover (:class:`RecoveryParams`).
* :mod:`repro.chaos.injector` — :class:`Injector`: applies one plan to
  one run; logs every fault/detect/recover event into telemetry.
* :mod:`repro.chaos.recovery` — graceful degradation (plan remap) and
  campaign target introspection.  Imported explicitly, not from here:
  it pulls in the simulator stack, which imports this package.
* :mod:`repro.chaos.campaign` — seeded campaigns over kernels and apps
  with differential masked / detected_recovered / detected_failed /
  sdc classification (``repro chaos``).  Also imported explicitly.
"""

from repro.chaos.injector import (
    NULL_INJECTOR,
    ChannelCorruptionError,
    ChaosError,
    CixStallError,
    Injector,
    NullInjector,
    ensure_injector,
)
from repro.chaos.plan import (
    CORE_SITES,
    FABRIC_SITES,
    SITES,
    Fault,
    InjectionPlan,
    InjectionPlanError,
    RecoveryParams,
    random_fault,
    random_plan,
)

__all__ = [
    "CORE_SITES",
    "FABRIC_SITES",
    "SITES",
    "ChannelCorruptionError",
    "ChaosError",
    "CixStallError",
    "Fault",
    "InjectionPlan",
    "InjectionPlanError",
    "Injector",
    "NULL_INJECTOR",
    "NullInjector",
    "RecoveryParams",
    "ensure_injector",
    "random_fault",
    "random_plan",
]
