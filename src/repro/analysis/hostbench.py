"""Host-side simulator-throughput bench (``BENCH_host.json``).

Measures simulated-instructions-per-second of the execution engines on
a fixed workload set — three Figure-11 kernels spanning the op-mix
space plus the APP4 16-tile co-simulation — for both the retained
reference interpreter and the pre-decoded fast loop, and records the
ratio.  The simulated cycle counts are bit-identical across engines
(the differential suite proves that); this bench tracks only how fast
the host gets them.

Gating (:func:`compare_host`) is direction-aware like
:func:`repro.analysis.bench.compare_bench`: absolute instr/s values are
machine-dependent, so CI compares them against a committed baseline
with a generous relative tolerance and only fails on *drops*; the
machine-independent ``fast_speedup`` ratio (fast loop vs reference
interpreter on the same host, same process) additionally gates against
a floor — the refactor's "≥2× faster than the pre-refactor
interpreter" claim, re-proven on every run.
"""

import statistics
import time

SCHEMA_VERSION = 1

#: The fixed kernel trio: FIR (dense MAC loop), FFT (butterflies +
#: bit-reversal, heavier control) and 2D convolution (largest body,
#: nested loops) — together they cover the ALU/shift/mem/branch mix.
HOST_KERNELS = ("fir", "fft", "2dconv")
HOST_APP = "APP4"

#: The fast loop must beat the reference interpreter by at least this
#: factor (machine-independent ratio, measured in-process).
MIN_FAST_SPEEDUP = 2.0

#: Relative drop in instr/s vs the committed baseline that fails the
#: regression gate (absolute throughputs are machine-dependent, so the
#: tolerance is loose; the ratio gate above is the sharp one).
DEFAULT_TOLERANCE = 0.10


def _measure_kernel(name, engine, repeats, seed):
    from repro.cpu.core import Core
    from repro.mem.hierarchy import MemorySystem
    from repro.workloads import make_kernel

    times = []
    instructions = None
    for _ in range(repeats):
        kernel = make_kernel(name, seed=seed)
        core = Core(kernel.program, MemorySystem.stitch(), engine=engine)
        kernel.setup(core)
        start = time.perf_counter()
        outcome = core.run(max_instructions=20_000_000)
        times.append(time.perf_counter() - start)
        if outcome.reason != "halt":
            raise RuntimeError(
                f"kernel {name!r} did not halt ({outcome.reason})"
            )
        instructions = core.instret
    return instructions, statistics.median(times)


def _measure_app(name, engine, repeats, seed, items):
    from repro.sim.baselines import ARCH_STITCH, AppEvaluator
    from repro.workloads.apps import APP_FACTORIES

    evaluator = AppEvaluator(APP_FACTORIES[name](seed=seed))
    evaluator.cycle_tables()  # compile once, outside the timed region
    times = []
    instructions = None
    for _ in range(repeats):
        system, _ = evaluator.build_system(
            ARCH_STITCH, items=items, engine=engine
        )
        start = time.perf_counter()
        results = system.run()
        times.append(time.perf_counter() - start)
        if not all(r.halted for r in results):
            raise RuntimeError(f"app {name!r} did not run to completion")
        instructions = sum(r.instructions for r in results)
    return instructions, statistics.median(times)


def bench_host(kernels=HOST_KERNELS, app=HOST_APP, repeats=3, seed=1,
               items=4, engines=("reference", "fast")):
    """Measure simulated-instr/s per target per engine.

    Returns the ``BENCH_host.json`` payload: per-target instruction
    counts and throughputs per engine, plus an aggregate (total
    instructions / total median time) and the ``fast_speedup`` ratio
    when both the ``fast`` and ``reference`` engines are measured.
    """
    targets = {}
    totals = {engine: [0, 0.0] for engine in engines}  # instr, seconds
    jobs = [(name, "kernel") for name in kernels]
    if app:
        jobs.append((app, "app"))
    for name, kind in jobs:
        row = {}
        for engine in engines:
            if kind == "kernel":
                instructions, seconds = _measure_kernel(
                    name, engine, repeats, seed
                )
            else:
                instructions, seconds = _measure_app(
                    name, engine, repeats, seed, items
                )
            if row.get("instructions", instructions) != instructions:
                raise RuntimeError(
                    f"{name!r}: engines disagree on instruction count "
                    f"({row['instructions']} vs {instructions}) — "
                    f"cycle-exactness broke; run the differential suite"
                )
            row["instructions"] = instructions
            row[f"{engine}_instr_per_second"] = round(
                instructions / seconds
            ) if seconds else None
            totals[engine][0] += instructions
            totals[engine][1] += seconds
        if "reference" in engines and "fast" in engines:
            ref = row["reference_instr_per_second"]
            fast = row["fast_instr_per_second"]
            row["fast_speedup"] = round(fast / ref, 3) if ref else None
        targets[name] = row
    aggregate = {}
    for engine in engines:
        instructions, seconds = totals[engine]
        aggregate[f"{engine}_instr_per_second"] = round(
            instructions / seconds
        ) if seconds else None
    if "reference" in engines and "fast" in engines:
        ref = aggregate["reference_instr_per_second"]
        fast = aggregate["fast_instr_per_second"]
        aggregate["fast_speedup"] = round(fast / ref, 3) if ref else None
    return {
        "bench": "host",
        "schema": SCHEMA_VERSION,
        "repeats": repeats,
        "targets": targets,
        "aggregate": aggregate,
    }


def compare_host(current, baseline, tolerance=DEFAULT_TOLERANCE,
                 min_speedup=MIN_FAST_SPEEDUP):
    """Diff a fresh host bench against a baseline; ``(regressions, notes)``.

    Three things gate (everything else is a note, so single-target
    timing noise cannot fail CI):

    * per-target simulated instruction *counts* must match the baseline
      exactly — a drifting count means the workload changed under the
      bench, silently invalidating the throughput trend;
    * the *aggregate* fast-engine instr/s may not drop more than
      ``tolerance`` below the baseline (direction-aware: improvements
      never fail; the aggregate pools every target's samples, so it is
      far less noisy than any single row);
    * the aggregate ``fast_speedup`` ratio must stay above
      ``min_speedup`` — the machine-independent floor, compared against
      the floor rather than the baseline value because both engines run
      on the same host in the same process.

    Per-target throughputs and the reference engine's own speed are
    reported as notes only: the reference interpreter is the oracle,
    not the product, and single-kernel wall times on shared CI runners
    swing well beyond any useful tolerance.
    """
    regressions = []
    notes = []

    base_targets = baseline.get("targets", {})
    cur_targets = current.get("targets", {})
    for name in sorted(base_targets):
        base_row = base_targets[name]
        cur_row = cur_targets.get(name)
        if cur_row is None:
            regressions.append(
                f"targets.{name}: present in baseline, missing now"
            )
            continue
        base_count = base_row.get("instructions")
        cur_count = cur_row.get("instructions")
        if base_count != cur_count:
            regressions.append(
                f"targets.{name}.instructions: simulated count changed "
                f"{base_count} -> {cur_count}"
            )
        for key in sorted(base_row):
            base_value = base_row[key]
            cur_value = cur_row.get(key)
            if key == "instructions" or not isinstance(
                base_value, (int, float)
            ):
                continue
            if isinstance(cur_value, (int, float)) and base_value:
                drift = (cur_value - base_value) / abs(base_value)
                notes.append(
                    f"targets.{name}.{key}: {base_value} -> {cur_value} "
                    f"({drift:+.1%})"
                )

    base_agg = baseline.get("aggregate", {})
    cur_agg = current.get("aggregate", {})
    for key in sorted(base_agg):
        base_value = base_agg[key]
        cur_value = cur_agg.get(key)
        path = f"aggregate.{key}"
        if cur_value is None:
            regressions.append(f"{path}: present in baseline, missing now")
            continue
        if key == "fast_speedup":
            if cur_value < min_speedup:
                regressions.append(
                    f"{path}: {cur_value} below the {min_speedup}x floor "
                    f"(baseline {base_value})"
                )
            else:
                notes.append(f"{path}: {base_value} -> {cur_value}")
            continue
        if not isinstance(base_value, (int, float)) or not base_value:
            continue
        drift = (cur_value - base_value) / abs(base_value)
        line = f"{path}: {base_value} -> {cur_value} ({drift:+.1%})"
        if key.startswith("fast") and drift < -tolerance:
            regressions.append(line)  # instr/s: lower is worse
        else:
            notes.append(line)

    cur_speedup = cur_agg.get("fast_speedup")
    if (cur_speedup is not None and "fast_speedup" not in base_agg
            and cur_speedup < min_speedup):
        regressions.append(
            f"aggregate.fast_speedup: {cur_speedup} below the "
            f"{min_speedup}x floor"
        )
    return regressions, notes


def render_host(payload):
    """Human-readable table of one host-bench payload."""
    lines = []
    header = f"{'target':<10} {'instr':>9} {'ref M/s':>8} {'fast M/s':>9} {'speedup':>8}"
    lines.append(header)
    rows = list(payload["targets"].items()) + [
        ("TOTAL", dict(payload["aggregate"], instructions=""))
    ]
    for name, row in rows:
        ref = row.get("reference_instr_per_second")
        fast = row.get("fast_instr_per_second")
        speedup = row.get("fast_speedup")
        lines.append(
            f"{name:<10} {row.get('instructions', ''):>9} "
            f"{ref / 1e6 if ref else 0:>8.2f} "
            f"{fast / 1e6 if fast else 0:>9.2f} "
            f"{speedup if speedup is not None else '':>8}"
        )
    return "\n".join(lines)
