"""Performance-trajectory bench harness (``python -m repro bench``).

Re-measures the paper's two headline result sets with full provenance
on and emits them as machine-diffable JSON:

* **BENCH_fig11.json** — per-kernel speedups (LOCUS / best single patch
  / best stitched pair), plus the compile wall time and the simulator's
  sustained cycles/second for each kernel,
* **BENCH_fig12.json** — per-application normalized throughput of the
  four architectures.

:func:`compare_bench` diffs a fresh run against a committed baseline
(``benchmarks/baselines/``): *simulated* numbers — speedups, cycle
counts, throughputs — must stay within a relative tolerance, while
wall-clock fields (machine-dependent) are reported but never compared.
CI runs the comparison on every push, so a change that silently costs
simulated performance fails the build instead of drifting the figures.
"""

import json
from concurrent.futures import ProcessPoolExecutor

from repro.provenance import CompileReport, StitchTrace

SCHEMA_VERSION = 1

# Wall-clock fields: recorded for trend plots, excluded from comparison.
WALL_FIELDS = frozenset({
    "compile_wall_seconds",
    "simulated_cycles_per_second",
    "wall_seconds",
})


def _bench_one_kernel(name, seed):
    """One Fig. 11 row; top-level so a process pool can run it."""
    from repro.compiler.driver import (
        ALL_OPTIONS,
        FUSED_OPTIONS,
        KernelCompiler,
        LOCUS_OPTION,
        SINGLE_OPTIONS,
    )
    from repro.workloads import make_kernel

    kernel = make_kernel(name, seed=seed)
    report = CompileReport(name)
    compiler = KernelCompiler(kernel, allow_replication=True,
                              report=report)
    compiled = compiler.compile_options(ALL_OPTIONS + (LOCUS_OPTION,))

    def best(options):
        return max(
            (compiled[o.name] for o in options), key=lambda c: c.speedup
        )

    best_single = best(SINGLE_OPTIONS)
    best_fused = best(FUSED_OPTIONS)
    best_any = best(ALL_OPTIONS)
    measure_seconds = sum(
        span.seconds
        for version in report.versions.values()
        for span in version.phases
        if span.name == "measure"
    )
    simulated = sum(
        version.cycles or 0 for version in report.versions.values()
    )
    return name, {
        "baseline_cycles": compiler.baseline_cycles,
        "locus_speedup": round(compiled[LOCUS_OPTION.name].speedup, 4),
        "best_single": {
            "option": best_single.option.name,
            "speedup": round(best_single.speedup, 4),
        },
        "best_fused": {
            "option": best_fused.option.name,
            "speedup": round(best_fused.speedup, 4),
        },
        "best_speedup": round(best_any.speedup, 4),
        "candidates_accounted": report.accounted(),
        # wall-clock (trend-only, never compared):
        "compile_wall_seconds": round(report.total_wall_seconds(), 3),
        "simulated_cycles_per_second": (
            round(simulated / measure_seconds) if measure_seconds else None
        ),
    }


def _bench_one_kernel_star(args):
    return _bench_one_kernel(*args)


def _bench_one_app(name, seed):
    """One Fig. 12 row; top-level so a process pool can run it."""
    import time

    from repro.sim.baselines import ARCHITECTURES, ARCH_STITCH, AppEvaluator
    from repro.workloads.apps import APP_FACTORIES

    start = time.perf_counter()
    evaluator = AppEvaluator(APP_FACTORIES[name](seed=seed))
    throughputs = evaluator.normalized_throughputs()
    trace = StitchTrace(name)
    plan = evaluator.plan(ARCH_STITCH, trace=trace)
    return name, {
        "throughputs": {
            arch: round(throughputs[arch], 4) for arch in ARCHITECTURES
        },
        "bottleneck_cycles": plan.bottleneck_cycles(),
        "fused_pairs": len(plan.fused_pairs()),
        "winning_variant": getattr(trace.winner(), "name", None),
        # wall-clock (trend-only, never compared):
        "wall_seconds": round(time.perf_counter() - start, 3),
    }


def _bench_one_app_star(args):
    return _bench_one_app(*args)


def _fan_out(worker, names, seed, workers):
    """Per-item process fan-out with a deterministic, submission-ordered
    merge (and ``write_bench`` sorts keys on disk anyway).

    Every item is an independent measurement (the in-process compile
    caches only ever dedupe *within* one item), so farming items out to
    fresh processes produces bit-identical simulated numbers — only the
    wall-clock fields (never compared) differ from a serial run.
    """
    if workers is not None and workers > 1 and len(names) > 1:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            rows = list(pool.map(worker, [(name, seed) for name in names]))
    else:
        rows = [worker((name, seed)) for name in names]
    return dict(rows)


def bench_fig11(kernels=None, seed=1, workers=None):
    """Per-kernel speedup + compile-cost table (Figure 11 axis)."""
    from repro.analysis.experiments.kernels import FIG11_KERNELS

    names = tuple(kernels) if kernels is not None else FIG11_KERNELS
    return {
        "bench": "fig11",
        "schema": SCHEMA_VERSION,
        "kernels": _fan_out(_bench_one_kernel_star, names, seed, workers),
    }


def bench_fig12(apps=None, seed=1, workers=None):
    """Per-app architecture throughput table (Figure 12 axis)."""
    from repro.workloads.apps import APP_FACTORIES

    names = tuple(apps) if apps is not None else tuple(sorted(APP_FACTORIES))
    return {
        "bench": "fig12",
        "schema": SCHEMA_VERSION,
        "apps": _fan_out(_bench_one_app_star, names, seed, workers),
    }


def write_bench(payload, path):
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_bench(path):
    with open(path) as handle:
        return json.load(handle)


def _flatten(value, prefix=""):
    """``{dotted.path: leaf}`` over nested dicts, wall fields dropped."""
    flat = {}
    if isinstance(value, dict):
        for key, child in value.items():
            if key in WALL_FIELDS:
                continue
            flat.update(_flatten(child, f"{prefix}.{key}" if prefix else key))
    else:
        flat[prefix] = value
    return flat


def compare_bench(current, baseline, tolerance=0.03):
    """Diff two bench payloads; returns (regressions, notes).

    ``regressions`` lists human-readable strings for every simulated
    metric that got *worse* than the baseline by more than the relative
    ``tolerance`` (or appeared/disappeared/changed kind); improvements
    and in-tolerance drift land in ``notes``.  Wall-clock fields are
    never compared.
    """
    regressions = []
    notes = []
    flat_current = _flatten(current)
    flat_baseline = _flatten(baseline)
    for key in sorted(flat_baseline):
        if key not in flat_current:
            regressions.append(f"{key}: present in baseline, missing now")
            continue
        base, cur = flat_baseline[key], flat_current[key]
        if isinstance(base, bool) or not isinstance(base, (int, float)):
            if cur != base:
                regressions.append(f"{key}: {base!r} -> {cur!r}")
            continue
        if not isinstance(cur, (int, float)) or isinstance(cur, bool):
            regressions.append(f"{key}: {base!r} -> non-numeric {cur!r}")
            continue
        if base == cur:
            continue
        drift = (cur - base) / abs(base) if base else float("inf")
        # Lower is worse for speedups/throughputs; higher is worse for
        # cycle counts.
        worse = drift > tolerance if "cycles" in key else drift < -tolerance
        line = f"{key}: {base} -> {cur} ({drift:+.1%})"
        if worse:
            regressions.append(line)
        else:
            notes.append(line)
    for key in sorted(set(flat_current) - set(flat_baseline)):
        notes.append(f"{key}: new metric (not in baseline)")
    return regressions, notes
