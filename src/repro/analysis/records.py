"""Paper-vs-measured record keeping.

A record states what the paper reports, what this reproduction
measures, and whether the *shape* holds (within a per-record band —
absolute numbers are not expected to match a different substrate, see
DESIGN.md §1).
"""


class ExperimentRecord:
    """One compared quantity."""

    __slots__ = ("name", "paper", "measured", "unit", "tolerance", "note", "compare")

    def __init__(self, name, paper, measured, unit="", tolerance=None,
                 note="", compare="ratio"):
        self.name = name
        self.paper = paper
        self.measured = measured
        self.unit = unit
        self.tolerance = tolerance
        self.note = note
        self.compare = compare  # "ratio" | "direction" | "exact" | "info"

    def holds(self):
        """Does the measured value preserve the paper's claim?"""
        if self.compare == "info" or self.paper is None or self.measured is None:
            return True
        if self.compare == "exact":
            return self.measured == self.paper
        if self.compare == "direction":
            # Claims like "X beats Y": both sides stored as ratios > 1.
            return (self.measured > 1) == (self.paper > 1)
        tolerance = self.tolerance if self.tolerance is not None else 0.5
        if self.paper == 0:
            return abs(self.measured) <= tolerance
        return abs(self.measured - self.paper) / abs(self.paper) <= tolerance

    def __repr__(self):
        return (
            f"ExperimentRecord({self.name}: paper={self.paper} "
            f"measured={self.measured} {self.unit})"
        )


class ExperimentReport:
    """All records of one experiment plus its rendered table."""

    def __init__(self, exp_id, title, records=None, table=""):
        self.exp_id = exp_id
        self.title = title
        self.records = list(records or [])
        self.table = table

    def add(self, *args, **kwargs):
        record = ExperimentRecord(*args, **kwargs)
        self.records.append(record)
        return record

    def all_hold(self):
        return all(record.holds() for record in self.records)

    def failures(self):
        return [record for record in self.records if not record.holds()]

    def to_markdown(self):
        lines = [f"### {self.exp_id} — {self.title}", ""]
        lines.append("| quantity | paper | measured | unit | shape holds | note |")
        lines.append("|---|---|---|---|---|---|")
        for r in self.records:
            def fmt(value):
                if value is None:
                    return "—"
                if isinstance(value, float):
                    return f"{value:.3g}"
                return str(value)
            lines.append(
                f"| {r.name} | {fmt(r.paper)} | {fmt(r.measured)} | {r.unit} "
                f"| {'yes' if r.holds() else 'NO'} | {r.note} |"
            )
        if self.table:
            lines.extend(["", "```", self.table, "```"])
        return "\n".join(lines)

    def summary(self):
        held = sum(1 for r in self.records if r.holds())
        return f"{self.exp_id}: {held}/{len(self.records)} records hold"
