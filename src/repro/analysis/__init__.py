"""Experiment harness: one driver per table/figure of the paper.

Each experiment module exposes ``run(...)`` returning an
:class:`~repro.analysis.records.ExperimentReport` — paper-vs-measured
records plus a rendered table.  ``python -m repro.analysis.report``
executes everything and regenerates EXPERIMENTS.md.
"""

from repro.analysis.records import ExperimentRecord, ExperimentReport
from repro.analysis.tables import render_table

__all__ = ["ExperimentRecord", "ExperimentReport", "render_table"]
