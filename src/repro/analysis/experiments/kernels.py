"""Kernel-level experiments: Figures 4 and 11, Sections III-A/III-C/VI-D."""

from repro.analysis.records import ExperimentReport
from repro.analysis.tables import render_table
from repro.compiler import DFG, critical_path_classes, lcs_rounds, profile_kernel
from repro.compiler.driver import (
    ALL_OPTIONS,
    FUSED_OPTIONS,
    KernelCompiler,
    LOCUS_OPTION,
    SINGLE_OPTIONS,
)
from repro.compiler.opchain import patch_mix_from_rounds
from repro.cpu import Core
from repro.isa import Asm, Op
from repro.mem import MemorySystem, SPM_BASE
from repro.sim.baselines import compile_kernel_options
from repro.workloads import kernel_suite, make_kernel

# Figure 11's kernel axis (our suite).
FIG11_KERNELS = (
    "fft", "ifft", "2dconv", "dtw", "aes", "aesdec", "histogram", "svm",
    "pool", "fc", "fir", "specfilter", "update", "classify", "astar",
)

PAPER_AVG_SINGLE = 1.56      # Section VI-C
PAPER_FFT_STITCHED = 1.99
PAPER_FFT_SINGLE = 1.37
PAPER_SPM_DEGRADATION = 0.015
PAPER_FREQ_PERF = 1.03       # Section VI-D: Stitch@200 vs LOCUS@400


def _suite_tables(names=FIG11_KERNELS, seed=1, allow_replication=True):
    tables = {}
    for name in names:
        kernel = make_kernel(name, seed=seed)
        cycles, _ = compile_kernel_options(
            kernel, allow_replication=allow_replication
        )
        tables[name] = cycles
    return tables


def _best(table, options):
    names = [o.name for o in options if o.name in table]
    return min((table[n] for n in names), default=table["baseline"])


def run_fig11_kernel_speedups(seed=1):
    """Per-kernel speedup: LOCUS ISE vs single patch vs stitched."""
    report = ExperimentReport(
        "Fig. 11",
        "Normalized per-kernel speedup over software-only execution",
    )
    tables = _suite_tables(seed=seed)
    rows = []
    singles, stitches, locuses = [], [], []
    for name, table in tables.items():
        base = table["baseline"]
        locus = base / table[LOCUS_OPTION.name]
        single = base / _best(table, SINGLE_OPTIONS)
        stitched = base / _best(table, ALL_OPTIONS)
        rows.append((name, locus, single, stitched))
        locuses.append(locus)
        singles.append(single)
        stitches.append(stitched)
    avg = lambda xs: sum(xs) / len(xs)
    report.table = render_table(
        ["kernel", "LOCUS ISE", "single patch", "stitched"], rows,
        title="Speedup over software-only (x)",
    )
    report.add("average single-patch speedup", PAPER_AVG_SINGLE, avg(singles),
               "x", tolerance=0.35,
               note="paper kernels differ; shape = meaningful speedup >1")
    all_monotone = all(stitched >= single - 1e-9
                       for _name, _locus, single, stitched in rows)
    report.add("stitched >= single (every kernel)", 1.0,
               1.0 if all_monotone else 0.0, compare="exact")
    report.add("single patch beats LOCUS ISE on average", 1.1,
               avg(singles) / avg(locuses), "x", compare="direction",
               note="patches add SPM load/store inside ISEs")
    astar = next(r for r in rows if r[0] == "astar")
    report.add("astar gains ~nothing from stitching", 1.0,
               astar[3] / astar[2], "x", tolerance=0.1,
               note="small patterns; Section VI-C observation")
    return report


def run_fig4_pattern():
    """Figure 4: one pattern on {AT-MA} vs {AT-AS} vs fused pair."""
    report = ExperimentReport(
        "Fig. 4", "A computational pattern accelerated by different patches"
    )

    def pattern_kernel():
        asm = Asm("fig4")
        asm.movi("r1", SPM_BASE)
        asm.movi("r8", SPM_BASE + 4 * 64)
        loop = asm.label("loop")
        asm.lw("r2", 0, "r1")
        asm.add("r3", "r2", "r6")    # t1 = x + c1
        asm.slli("r4", "r3", 2)      # t2 = t1 << 2
        asm.add("r5", "r4", "r2")    # t3 = t2 + x
        asm.srai("r7", "r5", 1)      # t4 = t3 >> 1
        asm.sw("r7", 0, "r1")
        asm.addi("r1", "r1", 4)
        asm.bne("r1", "r8", loop)
        asm.halt()
        program = asm.assemble()

        class K:
            name = "fig4"
            live_out_regs = frozenset()

            def __init__(self):
                self.program = program

            def setup(self, core):
                core.memory.load(SPM_BASE, list(range(64)))
                core.write_reg(6, 3)

            def result(self, core):
                return core.memory.dump(SPM_BASE, 64)

        return K()

    def loop_instructions(compiled):
        ops = [i.op for i in compiled.program]
        body = ops[ops.index(Op.LW):]  # from first load to the end
        return len(body)

    compiler = KernelCompiler(pattern_kernel())
    results = {}
    for option in (
        next(o for o in SINGLE_OPTIONS if o.name == "AT-MA"),
        next(o for o in SINGLE_OPTIONS if o.name == "AT-AS"),
        next(o for o in FUSED_OPTIONS if o.name == "AT-AS+AT-AS"),
    ):
        compiled = compiler.compile(option)
        results[option.name] = compiled
    rows = [
        (name, c.cycles, round(c.speedup, 2), len(c.mappings))
        for name, c in results.items()
    ]
    report.table = render_table(
        ["patch option", "kernel cycles", "speedup", "custom instrs"], rows,
        title="The Fig. 4 pattern inside a 64-iteration loop",
    )
    report.add(
        "{AT-AS} beats {AT-MA} on this pattern", 2.0,
        results["AT-MA"].cycles / results["AT-AS"].cycles * 2,
        compare="direction", note="paper: 2 cycles vs 4 cycles",
    )
    report.add(
        "fused {AT-AS,AT-AS} beats single {AT-AS}", 2.0,
        results["AT-AS"].cycles / results["AT-AS+AT-AS"].cycles * 2,
        compare="direction", note="paper: 1 cycle vs 2 cycles",
    )
    return report


def run_sec3a_opchains(seed=1):
    """Section III-A: multi-round LCS op-chain study + patch mix."""
    report = ExperimentReport(
        "Sec. III-A", "Hot op-chain identification and the patch mix"
    )
    patterns = {}
    for kernel in kernel_suite(seed=seed):
        profile = profile_kernel(kernel.program, kernel.setup)
        chains = []
        for hot in profile.hot_blocks():
            dfg = DFG(hot.block, spm_only=profile.spm_only)
            path = critical_path_classes(dfg)
            if path:
                chains.append(path)
        patterns[kernel.name] = chains
    rounds = lcs_rounds(patterns, max_len=2, max_rounds=8)
    rows = [(f"{{{r.chain}}}", f"{r.rate:.1%}", r.count) for r in rounds]
    report.table = render_table(
        ["op-chain", "occurrence rate", "kernels"], rows,
        title="LCS rounds over our kernel suite (paper suite differs)",
    )
    top = rounds[0]
    report.add("{AT} is the most common chain", "AT", top.chain,
               compare="exact", note=f"paper: 95.7%, ours {top.rate:.0%}")
    from repro.compiler.opchain import OpChainRound
    paper_rounds = [
        OpChainRound("MA", 0.478, 11),
        OpChainRound("AS", 0.217, 5),
        OpChainRound("SA", 0.217, 5),
    ]
    mix = patch_mix_from_rounds(paper_rounds)
    report.add("patch mix from the paper's rates", "8/4/4",
               f"{mix['MA']}/{mix['AS']}/{mix['SA']}", compare="exact",
               note="reproduces the 8 {AT-MA} / 4 {AT-AS} / 4 {AT-SA} split")
    return report


def run_sec3c_spm_tradeoff(seed=1, items=10,
                           names=("fir", "histogram", "update", "2dconv", "fft")):
    """Section III-C: 4KB D$ + 4KB SPM vs 8KB D$ (no custom instrs).

    Kernels loop ``items`` times so cold misses amortize — the paper's
    ~1.5 % claim is about steady-state behaviour, where the big cache
    and the scratchpad both serve the hot data in one cycle.
    """
    from repro.sim.streaming import wrap_streaming

    report = ExperimentReport(
        "Sec. III-C", "Replacing half the data cache with a scratchpad"
    )
    rows = []
    deltas = []
    for name in names:
        kernel = make_kernel(name, seed=seed)
        program = wrap_streaming(kernel.program, [], [], items=items)
        spm_core = Core(program, MemorySystem.stitch())
        kernel.setup(spm_core)
        spm_core.run(max_instructions=50_000_000)
        cache_core = Core(program, MemorySystem.baseline())
        kernel.setup(cache_core)
        cache_core.run(max_instructions=50_000_000)
        delta = spm_core.cycles / cache_core.cycles - 1.0
        deltas.append(delta)
        rows.append((name, cache_core.cycles, spm_core.cycles, f"{delta:+.2%}"))
    avg_delta = sum(deltas) / len(deltas)
    report.table = render_table(
        ["kernel", "8KB D$ cycles", "4KB D$ + SPM cycles", "delta"], rows,
        title=f"{items} iterations per kernel (steady state)",
    )
    report.add("average |cycle delta| (SPM vs big D$)", PAPER_SPM_DEGRADATION,
               abs(avg_delta), tolerance=2.0,
               note="paper: ~1.5% degradation; ours slightly favors the "
                    "SPM (no conflict misses on perfectly-mapped data)")
    report.add("worst per-kernel degradation", 0.05, max(deltas),
               compare="info")
    return report


def run_sec6d_frequency(seed=1):
    """Section VI-D: LOCUS at its 400 MHz max vs Stitch at 200 MHz."""
    report = ExperimentReport(
        "Sec. VI-D", "Frequency-adjusted comparison with LOCUS"
    )
    tables = _suite_tables(seed=seed)
    rows = []
    ratios = []
    for name, table in tables.items():
        stitch_time = _best(table, ALL_OPTIONS) / 200e6
        locus_time = table[LOCUS_OPTION.name] / 400e6
        ratio = locus_time / stitch_time   # >1 -> Stitch faster
        ratios.append(ratio)
        rows.append((name, f"{stitch_time*1e6:.1f}", f"{locus_time*1e6:.1f}",
                     round(ratio, 2)))
    avg_ratio = sum(ratios) / len(ratios)
    report.table = render_table(
        ["kernel", "Stitch@200MHz (us)", "LOCUS@400MHz (us)",
         "Stitch speedup"], rows,
    )
    report.add(
        "Stitch@200 vs LOCUS@400 average speedup", PAPER_FREQ_PERF, avg_ratio,
        "x", tolerance=0.6,
        note=(
            "paper: 1.03x. Our LOCUS SFU is stronger (captures paired "
            "independent ops) and our fusion omits remote-SPM data "
            "placement, so clock-doubled LOCUS wins here; see "
            "EXPERIMENTS.md for the analysis"
        ),
    )
    # Perf/W at the two clocks: power scales ~linearly with frequency.
    from repro.power.chip import ChipModel
    chip = ChipModel()
    locus_power_400 = chip.locus_power_mw() * 2
    ppw_ratio = avg_ratio * (locus_power_400 / chip.total_power_mw())
    report.add("Stitch perf/W vs LOCUS@400", 1.16, ppw_ratio, "x",
               compare="direction",
               note="paper: 1.16x; LOCUS's large SFUs burn power")
    return report
