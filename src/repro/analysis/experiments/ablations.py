"""Ablations over Stitch's design choices (DESIGN.md §5).

Not in the paper; these probe the decisions the paper makes implicitly:
the 3-hop (6 traversal) fusion radius, the heterogeneous 8/4/4 patch
mix, the 4 KB SPM size, and the 4-input/2-output register-file ports.
"""

from repro.analysis.records import ExperimentReport
from repro.analysis.tables import render_table
from repro.compiler.driver import KernelCompiler, SINGLE_OPTIONS
from repro.core import AT_AS, AT_MA, AT_SA, FusionTiming, Placement
from repro.mem.spm import SPM_BASE
from repro.sim.baselines import ARCH_STITCH, AppEvaluator
from repro.workloads import kernel_suite, make_kernel
from repro.workloads.apps import app1_gesture


def run_ablation_hoplimit():
    """Fusion radius vs achievable clock frequency."""
    report = ExperimentReport(
        "Ablation: hop limit", "Fusion radius against the clock period"
    )
    rows = []
    for hops in range(1, 7):
        worst = max(
            FusionTiming.fused_delay(a, b, hops)
            for a in (AT_MA, AT_AS, AT_SA)
            for b in (AT_MA, AT_AS, AT_SA)
        )
        freq = 1e3 / worst
        rows.append((hops, round(worst, 2), round(freq, 1),
                     "yes" if worst <= FusionTiming.clock_ns else "no"))
    report.table = render_table(
        ["hops (each way)", "worst fused delay (ns)", "max clock (MHz)",
         "fits 200 MHz"], rows,
    )
    report.add("3 hops is the largest radius fitting 200 MHz", 3,
               max(h for h, d, f, fits in rows if fits == "yes"),
               compare="exact",
               note="the paper's <= 6 traversal hops = 3 each way")
    return report


def run_ablation_patchmix(seed=1):
    """Heterogeneous 8/4/4 vs homogeneous placements (APP1 throughput)."""
    report = ExperimentReport(
        "Ablation: patch mix", "Heterogeneous vs homogeneous placements"
    )
    rows = []
    results = {}
    layouts = {
        "8/4/4 heterogeneous (paper)": None,
        "16x AT-MA": Placement.homogeneous(AT_MA),
        "16x AT-AS": Placement.homogeneous(AT_AS),
        "16x AT-SA": Placement.homogeneous(AT_SA),
    }
    for name, placement in layouts.items():
        evaluator = AppEvaluator(app1_gesture(seed=seed), placement=placement)
        speedup = evaluator.normalized_throughputs()[ARCH_STITCH]
        results[name] = speedup
        rows.append((name, round(speedup, 3)))
    report.table = render_table(["placement", "APP1 Stitch speedup"], rows)
    hetero = results["8/4/4 heterogeneous (paper)"]
    best_homo = max(v for k, v in results.items() if k.startswith("16x"))
    report.add("heterogeneous mix >= best homogeneous", 1.0,
               hetero / best_homo, "x", compare="direction",
               note="diverse kernels want diverse patch tails")
    return report


def run_ablation_spm(seed=1):
    """SPM size needed per kernel (the paper's 256 B .. 4 KB claim)."""
    report = ExperimentReport(
        "Ablation: SPM size", "Scratchpad footprint of every kernel"
    )
    rows = []
    footprints = {}
    for kernel in kernel_suite(seed=seed):
        regions = [r for r, _ in kernel.inputs + kernel.consts] + kernel.outputs
        top = max(region.end for region in regions)
        footprint = top - SPM_BASE
        footprints[kernel.name] = footprint
        rows.append((kernel.name, footprint,
                     "yes" if footprint <= 4096 else "no"))
    rows.sort(key=lambda r: -r[1])
    report.table = render_table(
        ["kernel", "SPM bytes", "fits 4 KB"], rows,
    )
    report.add("4 KB SPM fits every kernel", 1.0,
               1.0 if max(footprints.values()) <= 4096 else 0.0,
               compare="exact", note="Section III-C's sizing argument")
    report.add("largest footprint", 4096, max(footprints.values()), "B",
               tolerance=0.15, note="paper: histogram needs the full 4 KB")
    report.add("smallest footprint", 256, min(footprints.values()), "B",
               compare="info", note="paper: AES needs only 256 B (its S-box)")
    return report


def run_ablation_ports(seed=1, names=("fir", "update", "2dconv", "histogram")):
    """4-input/2-output vs a 2-input/1-output register-file budget."""
    report = ExperimentReport(
        "Ablation: RF ports", "Custom-instruction operand budget"
    )
    rows = []
    ratios = []
    for name in names:
        kernel_wide = make_kernel(name, seed=seed)
        wide = KernelCompiler(kernel_wide).best_option(SINGLE_OPTIONS)
        kernel_narrow = make_kernel(name, seed=seed)
        narrow = KernelCompiler(
            kernel_narrow, max_inputs=2, max_outputs=1
        ).best_option(SINGLE_OPTIONS)
        ratios.append(wide.speedup / narrow.speedup)
        rows.append((name, round(narrow.speedup, 2), round(wide.speedup, 2)))
    report.table = render_table(
        ["kernel", "2-in/1-out speedup", "4-in/2-out speedup"], rows,
    )
    report.add("wider ports never hurt", 1.0,
               1.0 if all(r >= 1.0 - 1e-9 for r in ratios) else 0.0,
               compare="exact")
    report.add("average benefit of 4/2 over 2/1", None,
               sum(ratios) / len(ratios), "x", compare="info")
    return report


def run_ablation_replication(seed=1, names=("2dconv", "svm", "fir", "classify")):
    """Const-region replication for fused remote loads on/off.

    The paper's compiler places arrays across tiles' scratchpads
    (Section III-C); our equivalent replicates read-only regions into
    the remote tile so a fused pattern's second load runs on the remote
    LMAU.  This ablation measures what that is worth per kernel.
    """
    from repro.compiler.driver import ALL_OPTIONS
    from repro.sim.baselines import compile_kernel_options
    from repro.core.stitching import BASELINE

    report = ExperimentReport(
        "Ablation: load replication",
        "Fused patterns with remote read-only loads on/off",
    )
    rows = []
    gains = []
    for name in names:
        on_cycles, _ = compile_kernel_options(
            make_kernel(name, seed=seed), allow_replication=True
        )
        off_cycles, _ = compile_kernel_options(
            make_kernel(name, seed=seed), allow_replication=False
        )
        option_names = [o.name for o in ALL_OPTIONS]
        on = on_cycles[BASELINE] / min(on_cycles[n] for n in option_names)
        off = off_cycles[BASELINE] / min(off_cycles[n] for n in option_names)
        gains.append(on / off)
        rows.append((name, round(off, 2), round(on, 2), round(on / off, 2)))
    report.table = render_table(
        ["kernel", "stitched w/o replication", "with replication", "gain"],
        rows,
    )
    report.add("replication never hurts", 1.0,
               1.0 if all(g >= 1.0 - 1e-9 for g in gains) else 0.0,
               compare="exact")
    report.add("average stitched gain from replication", None,
               sum(gains) / len(gains), "x", compare="info",
               note="kernel-level; app binaries disable it (SPM space)")
    return report


ABLATIONS = {
    "hop limit": run_ablation_hoplimit,
    "patch mix": run_ablation_patchmix,
    "SPM size": run_ablation_spm,
    "RF ports": run_ablation_ports,
    "load replication": run_ablation_replication,
}
