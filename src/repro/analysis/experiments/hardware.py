"""Hardware-model experiments: Figure 13, Tables III, IV and V."""

from repro.analysis.records import ExperimentReport
from repro.analysis.tables import render_table
from repro.core import AT_AS, AT_MA, AT_SA, FusionTiming
from repro.core.fusion import MAX_FUSION_HOPS
from repro.power.chip import ChipModel, POWER_BREAKDOWN
from repro.power.components import (
    ACCEL_AREA_PERCENT,
    ACCEL_AREA_UM2,
    NOC_SWITCH_AREA_UM2,
    NOC_SWITCH_DELAY_NS,
    StitchAreaModel,
)
from repro.power.relatedwork import RELATED_WORK, related_work_table


def run_fig13_breakdown():
    """Figure 13: chip power and area breakdown."""
    report = ExperimentReport("Fig. 13", "Power and area breakdown")
    chip = ChipModel()
    power_rows = [
        (name, round(mw, 1), f"{mw / chip.total_power_mw():.1%}")
        for name, mw in chip.power_breakdown_mw().items()
    ]
    area_rows = [
        (name, round(mm2, 3))
        for name, mm2 in chip.area_breakdown().items()
    ]
    report.table = (
        render_table(["component", "power (mW)", "share"], power_rows,
                     title=f"Power at 200 MHz (total {chip.total_power_mw()} mW)")
        + "\n\n"
        + render_table(["component", "area (mm^2)"], area_rows,
                       title=f"Area (chip {chip.chip_area_mm2():.1f} mm^2)")
    )
    report.add("total power", 140.0, chip.total_power_mw(), "mW",
               tolerance=0.01, note="Table I anchor: ~140 mW at 200 MHz")
    report.add("accelerator power share", 0.23, chip.accel_power_fraction(),
               tolerance=0.01)
    report.add("accelerator area share", 0.005, chip.accel_area_fraction(),
               tolerance=0.02)
    report.add("breakdown fractions sum to 1", 1.0,
               sum(POWER_BREAKDOWN.values()), tolerance=1e-9)
    return report


def run_table3_area():
    """Table III: accelerator area across architectures."""
    report = ExperimentReport("Table III", "Accelerator area cost")
    model = StitchAreaModel()
    composed = model.composed()
    chip_um2 = ChipModel().chip_area_mm2() * 1e6
    rows = [
        (name, ACCEL_AREA_UM2[name], round(composed[name]),
         f"{composed[name] / chip_um2:.2%}", f"{ACCEL_AREA_PERCENT[name]}%")
        for name in ("LOCUS", "Stitch w/o fusion", "Stitch")
    ]
    report.table = render_table(
        ["architecture", "paper (um^2)", "composed (um^2)",
         "composed % chip", "paper % chip"], rows,
    )
    for name in composed:
        report.add(f"{name} area composes", ACCEL_AREA_UM2[name],
                   composed[name], "um^2", tolerance=0.01)
    report.add("LOCUS / Stitch area ratio", 7.64, model.locus_over_stitch(),
               "x", tolerance=0.02)
    return report


def run_table4_timing():
    """Table IV: component delays/areas and the 4.63 ns critical path."""
    report = ExperimentReport("Table IV", "Delay and area of components")
    rows = [
        (p.name, p.delay_ns, p.area_um2) for p in (AT_MA, AT_AS, AT_SA)
    ] + [
        ("NoC switch", NOC_SWITCH_DELAY_NS, NOC_SWITCH_AREA_UM2),
        ("3 hops (wire)", 0.3, "-"),
    ]
    report.table = render_table(["component", "delay (ns)", "area (um^2)"], rows)
    critical = FusionTiming.fused_delay(AT_MA, AT_AS, 3)
    report.add("critical path {AT-MA}+{AT-AS} @ 3 hops", 4.63, critical,
               "ns", tolerance=0.005,
               note="switch + patch + switch + 2x(3 hops) + patch + switch")
    report.add("single {AT-SA} incl. NoC overhead", 1.36,
               FusionTiming.single_delay(AT_SA), "ns", tolerance=0.005)
    report.add("every legal fusion fits the 5 ns clock", 1.0,
               1.0 if FusionTiming.max_fused_delay() <= 5.0 else 0.0,
               compare="exact",
               note=f"hop limit {MAX_FUSION_HOPS} each way -> 200 MHz")
    report.add("worst legal fused delay", None,
               FusionTiming.max_fused_delay(), "ns", compare="info")
    return report


def run_table5_relatedwork():
    """Table V: the related-work classification."""
    report = ExperimentReport(
        "Table V", "Architectures incorporating reconfigurable fabrics"
    )
    report.table = related_work_table()
    stitch = next(a for a in RELATED_WORK if a.name == "Stitch")
    others = [a for a in RELATED_WORK if a.name != "Stitch"]
    report.add("Stitch is the only many-core-sharable design", 1.0,
               1.0 if stitch.sharable and not any(a.sharable for a in others)
               else 0.0, compare="exact")
    tight = [a for a in RELATED_WORK
             if a.integration == "tight" and a.area_mm2 is not None]
    report.add("Stitch has the smallest tight-coupled area", 0.17,
               min(tight, key=lambda a: a.area_mm2).area_mm2, "mm^2",
               compare="exact")
    return report
