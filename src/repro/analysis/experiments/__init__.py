"""One driver per table/figure (see DESIGN.md §3 for the index)."""

from repro.analysis.experiments.kernels import (
    run_fig4_pattern,
    run_fig11_kernel_speedups,
    run_sec3a_opchains,
    run_sec3c_spm_tradeoff,
    run_sec6d_frequency,
)
from repro.analysis.experiments.apps import (
    run_fig10_fusion_maps,
    run_fig12_app_throughput,
    run_fig13_time_breakdown,
    run_fig14_efficiency,
    run_fig15_vs_wearables,
    run_table1_gesture,
)
from repro.analysis.experiments.hardware import (
    run_fig13_breakdown,
    run_table3_area,
    run_table4_timing,
    run_table5_relatedwork,
)

ALL_EXPERIMENTS = {
    "Table I": run_table1_gesture,
    "Fig. 4": run_fig4_pattern,
    "Sec. III-A": run_sec3a_opchains,
    "Sec. III-C": run_sec3c_spm_tradeoff,
    "Fig. 10": run_fig10_fusion_maps,
    "Fig. 11": run_fig11_kernel_speedups,
    "Fig. 12": run_fig12_app_throughput,
    "Fig. 13": run_fig13_breakdown,
    "Fig. 13 (time)": run_fig13_time_breakdown,
    "Table III": run_table3_area,
    "Table IV": run_table4_timing,
    "Fig. 14": run_fig14_efficiency,
    "Fig. 15": run_fig15_vs_wearables,
    "Table V": run_table5_relatedwork,
    "Sec. VI-D": run_sec6d_frequency,
}

__all__ = ["ALL_EXPERIMENTS"] + [f.__name__ for f in ALL_EXPERIMENTS.values()]
