"""Application-level experiments: Table I, Figures 10, 12, 14 and 15."""

from repro.analysis.records import ExperimentReport
from repro.analysis.tables import render_table
from repro.power.chip import ChipModel
from repro.power.efficiency import EfficiencyModel
from repro.power.platforms import (
    CORTEX_A7,
    GESTURE_DEADLINE_MS,
    SENSORTAG,
    WINDOWS_PER_GESTURE,
    stitch_platform,
)
from repro.sim.baselines import (
    ARCH_BASELINE,
    ARCH_LOCUS,
    ARCH_NOFUSE,
    ARCH_STITCH,
    ARCHITECTURES,
    AppEvaluator,
)
from repro.workloads.apps import all_apps, app1_gesture

# Paper anchors.
PAPER_FIG12 = {ARCH_LOCUS: 1.14, ARCH_NOFUSE: 1.53, ARCH_STITCH: 2.30}
PAPER_TABLE1 = {
    "SensorTag": 577.0, "Cortex-A7": 13.0,
    "Stitch w/o fusion": 11.49, "Stitch": 7.62,
}
PAPER_FIG14 = {"perf/W": 1.77, "perf/area": 2.28}
PAPER_FIG15 = {"throughput": 1.65, "perf/W": 6.04}

_EVALUATORS = {}


def evaluator_for(app):
    if app.name not in _EVALUATORS:
        _EVALUATORS[app.name] = AppEvaluator(app)
    return _EVALUATORS[app.name]


def _geomean(values):
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def run_fig12_app_throughput(seed=1):
    """Figure 12: per-app throughput normalized to the baseline."""
    report = ExperimentReport(
        "Fig. 12", "Normalized application throughput per architecture"
    )
    rows = []
    per_arch = {arch: [] for arch in ARCHITECTURES}
    for app in all_apps(seed=seed):
        speedups = evaluator_for(app).normalized_throughputs()
        rows.append((app.name,) + tuple(
            round(speedups[arch], 2) for arch in ARCHITECTURES
        ))
        for arch in ARCHITECTURES:
            per_arch[arch].append(speedups[arch])
    means = {arch: _geomean(per_arch[arch]) for arch in ARCHITECTURES}
    rows.append(("geomean",) + tuple(
        round(means[arch], 2) for arch in ARCHITECTURES
    ))
    report.table = render_table(("app",) + ARCHITECTURES, rows)
    for arch, paper in PAPER_FIG12.items():
        report.add(f"{arch} average speedup", paper, means[arch], "x",
                   tolerance=0.6,
                   note="shape: baseline < LOCUS < w/o fusion < Stitch")
    ordered = (
        means[ARCH_BASELINE] <= means[ARCH_LOCUS]
        <= means[ARCH_NOFUSE] <= means[ARCH_STITCH]
    )
    report.add("architecture ordering preserved", 1.0,
               1.0 if ordered else 0.0, compare="exact")
    return report


def run_fig10_fusion_maps(seed=1):
    """Figure 10: which patches Algorithm 1 stitches per application."""
    report = ExperimentReport(
        "Fig. 10", "Patch fusion maps chosen by Algorithm 1"
    )
    from repro.analysis.viz import plan_map, stitch_paths

    sections = []
    fused_counts = {}
    for app in all_apps(seed=seed):
        plan = evaluator_for(app).plan(ARCH_STITCH)
        fused_counts[app.name] = len(plan.fused_pairs())
        sections.append(
            f"--- {app.name} ---\n"
            + plan_map(plan, app=app)
            + "\n" + stitch_paths(plan)
        )
    report.table = "\n\n".join(sections)
    for name, count in fused_counts.items():
        report.add(f"{name}: fused pairs placed", None, count,
                   compare="info")
    report.add("at least one app uses fusion", 1.0,
               1.0 if any(fused_counts.values()) else 0.0, compare="exact")
    report.add(
        "stitchings are contention free", 1.0, 1.0, compare="exact",
        note="InterPatchNetwork rejects conflicting reservations by construction",
    )
    return report


def run_fig13_time_breakdown(seed=1):
    """Execution-time breakdown per app, from the attribution counters.

    The paper's utilization argument (Fig. 13 / Section VI) rests on
    *where cycles go*.  This driver co-simulates every app's Stitch
    plan on all 16 tiles with telemetry enabled and reports the
    breakdown straight from the per-tile cycle-attribution counters —
    the same ground truth the V500 verifier rule cross-checks — instead
    of any side computation.
    """
    from repro.telemetry import Telemetry
    from repro.verify import check_run

    report = ExperimentReport(
        "Fig. 13 (time)",
        "Execution-time breakdown from the cycle-attribution counters",
    )
    columns = ("scalar_compute", "patch", "communication",
               "memory_stall", "icache_stall", "branch_bubble")
    rows = []
    exact = True
    comm_shares = []
    patch_shares = []
    for app in all_apps(seed=seed):
        telemetry = Telemetry()
        system, _ = evaluator_for(app).build_system(
            ARCH_STITCH, items=2, telemetry=telemetry
        )
        results = system.run()
        breakdown = results.stats.breakdown()
        exact = exact and check_run(results).ok(strict=True)
        comm_shares.append(breakdown["communication"])
        patch_shares.append(breakdown["patch"])
        rows.append(
            (app.name,)
            + tuple(f"{breakdown[column]:.1%}" for column in columns)
            + (f"{sum(breakdown.values()):.3f}",)
        )
    report.table = render_table(("app",) + columns + ("sum",), rows)
    report.add(
        "every tile's buckets sum to its cycles exactly", 1.0,
        1.0 if exact else 0.0, compare="exact",
        note="V500 cross-check over all apps x 16 tiles",
    )
    report.add(
        "patches execute a visible share of cycles", 1.0,
        1.0 if all(share > 0 for share in patch_shares) else 0.0,
        compare="exact",
    )
    report.add(
        "communication share (geomean)", None,
        round(_geomean([max(share, 1e-9) for share in comm_shares]), 4),
        compare="info",
        note="blocked-receive + injection cycles per the attribution counters",
    )
    return report


def gesture_platforms(seed=1):
    """The four Table I platforms with our measured Stitch timings."""
    evaluator = evaluator_for(app1_gesture(seed=seed))
    freq = 200e6

    def per_gesture_ms(arch):
        cycles = evaluator.cycles_per_item(arch)
        return cycles * WINDOWS_PER_GESTURE / freq * 1e3

    return {
        "SensorTag": SENSORTAG,
        "Cortex-A7": CORTEX_A7,
        "Stitch w/o fusion": stitch_platform(
            per_gesture_ms(ARCH_NOFUSE),
            power_mw=ChipModel().nofusion_power_mw(),
            name="Stitch w/o fusion",
        ),
        "Stitch": stitch_platform(per_gesture_ms(ARCH_STITCH)),
        "baseline (16-core)": stitch_platform(
            per_gesture_ms(ARCH_BASELINE),
            power_mw=ChipModel().baseline_power_mw(),
            name="baseline",
        ),
    }


def run_table1_gesture(seed=1):
    """Table I: gesture recognition across platforms + the deadline."""
    report = ExperimentReport(
        "Table I", "Power-performance of gesture recognition per platform"
    )
    platforms = gesture_platforms(seed=seed)
    rows = []
    for name in ("SensorTag", "Cortex-A7", "Stitch w/o fusion", "Stitch"):
        p = platforms[name]
        rows.append((
            name,
            "yes" if p.meets_deadline() else "no",
            round(p.gesture_ms, 2),
            p.power_mw,
            p.freq_mhz,
        ))
    report.table = render_table(
        ["platform", f"meets {GESTURE_DEADLINE_MS} ms", "ms/gesture",
         "power (mW)", "freq (MHz)"], rows,
    )
    stitch = platforms["Stitch"]
    nofuse = platforms["Stitch w/o fusion"]
    report.add("only Stitch meets the 7.81 ms deadline", 1.0,
               1.0 if (stitch.meets_deadline()
                       and not nofuse.meets_deadline()
                       and not CORTEX_A7.meets_deadline()
                       and not SENSORTAG.meets_deadline()) else 0.0,
               compare="exact",
               note=f"per-gesture work calibrated to {WINDOWS_PER_GESTURE} windows")
    report.add("Stitch ms/gesture", PAPER_TABLE1["Stitch"],
               stitch.gesture_ms, "ms", tolerance=0.25)
    report.add("w/o-fusion ms/gesture", PAPER_TABLE1["Stitch w/o fusion"],
               nofuse.gesture_ms, "ms", tolerance=0.4)
    from repro.platform import DEFAULT_PLATFORM

    report.add("Stitch power", DEFAULT_PLATFORM.power.stitch_power_mw,
               stitch.power_mw, "mW", compare="exact")
    return report


def run_fig14_efficiency(seed=1):
    """Figure 14: power- and area-efficiency vs the baseline."""
    report = ExperimentReport(
        "Fig. 14", "Normalized power- and area-efficiency of Stitch"
    )
    model = EfficiencyModel()
    rows = []
    ppws, ppas = [], []
    for app in all_apps(seed=seed):
        speedup = evaluator_for(app).normalized_throughputs()[ARCH_STITCH]
        ppw = model.perf_per_watt_vs_baseline(speedup)
        ppa = model.perf_per_area_vs_baseline(speedup)
        ppws.append(ppw)
        ppas.append(ppa)
        rows.append((app.name, round(speedup, 2), round(ppw, 2), round(ppa, 2)))
    report.table = render_table(
        ["app", "speedup", "perf/W vs baseline", "perf/area vs baseline"],
        rows,
    )
    report.add("average perf/W improvement", PAPER_FIG14["perf/W"],
               _geomean(ppws), "x", tolerance=0.6,
               note="= speedup / 1.30 power ratio; tracks Fig. 12's gap")
    report.add("average perf/area improvement", PAPER_FIG14["perf/area"],
               _geomean(ppas), "x", tolerance=0.6,
               note="~= speedup: the 0.5% area overhead is negligible")
    speedups = [row[1] for row in rows]
    report.add("perf/area ~ speedup (area overhead tiny)",
               _geomean(speedups), _geomean(ppas), "x", tolerance=0.02,
               note="paper: 2.28x vs 2.30x — nearly identical")
    return report


def run_fig15_vs_wearables(seed=1):
    """Figure 15: Stitch vs the quad-A7 smartwatch class."""
    report = ExperimentReport(
        "Fig. 15", "Throughput / power / perf-per-watt vs quad Cortex-A7"
    )
    model = EfficiencyModel()
    platforms = gesture_platforms(seed=seed)
    # Calibration: the A7's measured gesture time anchors its speed
    # relative to our simulated baseline; other apps assume the same
    # A7-to-baseline ratio (no hardware; see DESIGN.md).
    base_ms = platforms["baseline (16-core)"].gesture_ms
    a7_scale = CORTEX_A7.gesture_ms / base_ms
    rows = []
    tputs, ppws = [], []
    for app in all_apps(seed=seed):
        evaluator = evaluator_for(app)
        stitch_cycles = evaluator.cycles_per_item(ARCH_STITCH)
        base_cycles = evaluator.cycles_per_item(ARCH_BASELINE)
        stitch_time = stitch_cycles / 200e6
        a7_time = base_cycles / 200e6 * a7_scale
        tput = model.throughput_vs_a7(stitch_time, a7_time)
        ppw = model.perf_per_watt_vs_a7(stitch_time, a7_time)
        tputs.append(tput)
        ppws.append(ppw)
        rows.append((app.name, round(tput, 2),
                     round(model.power_vs_a7(), 2), round(ppw, 2)))
    report.table = render_table(
        ["app", "throughput vs A7", "power vs A7", "perf/W vs A7"], rows,
    )
    report.add("average throughput vs A7", PAPER_FIG15["throughput"],
               _geomean(tputs), "x", tolerance=0.8,
               note="A7 anchored to Table I's 13 ms gesture measurement")
    report.add("average perf/W vs A7", PAPER_FIG15["perf/W"],
               _geomean(ppws), "x", tolerance=0.8,
               note="Stitch draws 139.5 mW vs the A7's 469 mW")
    report.add("Stitch power below the wearable budget", 1.0,
               1.0 if ChipModel().total_power_mw() < 200 else 0.0,
               compare="exact", note="hundreds-of-mW budget (Section II)")
    return report
