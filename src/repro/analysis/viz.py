"""ASCII tile-map rendering (Figure 2 / Figure 10 style).

Renders the 4x4 array with each tile's patch type, resident kernel and
stitching arrows, so a plan can be read the way the paper draws it.
"""

from repro.core.placement import DEFAULT_PLACEMENT
from repro.core.stitching import BASELINE

_ARROWS = {(1, 0): ">", (-1, 0): "<", (0, 1): "v", (0, -1): "^"}


def placement_map(placement=None):
    """The patch layout as a 4x4 grid of type names."""
    placement = placement if placement is not None else DEFAULT_PLACEMENT
    mesh = placement.mesh
    lines = []
    for y in range(mesh.height):
        row = []
        for x in range(mesh.width):
            tile = mesh.tile_at(x, y)
            row.append(f"[{mesh.paper_tile(tile):>2} {placement.type_of(tile).name:<5}]")
        lines.append(" ".join(row))
    return "\n".join(lines)


def plan_map(plan, app=None, placement=None):
    """One application's stitching plan as an annotated tile grid.

    Each cell shows the paper tile number, the resident kernel (or
    ``idle``), a ``*`` when the tile's own patch accelerates its
    kernel, and ``~N`` when its patch is lent to (or fused from) the
    stage on tile N.
    """
    placement = placement if placement is not None else DEFAULT_PLACEMENT
    mesh = placement.mesh
    resident = {}
    marks = {}
    for assignment in plan.assignments.values():
        if app is not None:
            name = app.stage(assignment.stage_id).kernel.name
        else:
            name = f"s{assignment.stage_id}"
        resident[assignment.tile] = name
        if assignment.option != BASELINE:
            marks[assignment.tile] = "*"
        if assignment.remote_tile is not None:
            marks[assignment.remote_tile] = (
                f"~{mesh.paper_tile(assignment.tile)}"
            )
    lines = []
    for y in range(mesh.height):
        top = []
        bottom = []
        for x in range(mesh.width):
            tile = mesh.tile_at(x, y)
            kernel = resident.get(tile, "idle")
            mark = marks.get(tile, "")
            top.append(f"[{mesh.paper_tile(tile):>2} {placement.type_of(tile).name:<5}]")
            bottom.append(f"[{kernel[:7]:<7}{mark:<3}]".ljust(12))
        lines.append(" ".join(top))
        lines.append(" ".join(bottom))
        lines.append("")
    legend = (
        "*  = accelerated by its own tile's patch   "
        "~N = patch lent to the kernel on paper-tile N"
    )
    return "\n".join(lines) + legend


def stitch_paths(plan, placement=None):
    """The reserved inter-patch routes, one line per fused pair."""
    placement = placement if placement is not None else DEFAULT_PLACEMENT
    mesh = placement.mesh
    lines = []
    for assignment in plan.fused_pairs():
        hops = " -> ".join(
            str(mesh.paper_tile(t)) for t in assignment.path
        )
        lines.append(
            f"stage {assignment.stage_id} ({assignment.option}): "
            f"tiles {hops}"
        )
    return "\n".join(lines) if lines else "(no fused pairs placed)"
