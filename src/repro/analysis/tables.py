"""Plain-text table rendering for experiment output."""


def render_table(headers, rows, title=None):
    """Fixed-width text table; cells are str()'d, floats get 3 digits."""

    def fmt(cell):
        if isinstance(cell, float):
            return f"{cell:.3f}".rstrip("0").rstrip(".")
        return str(cell)

    grid = [list(map(fmt, headers))] + [list(map(fmt, row)) for row in rows]
    widths = [
        max(len(grid[r][c]) for r in range(len(grid)))
        for c in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        cell.ljust(width) for cell, width in zip(grid[0], widths)
    )
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in grid[1:]:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
