"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``kernels`` — list the workload suite with baseline cycle counts,
* ``compile <kernel> [--option NAME]`` — compile + measure one kernel
  across patch options (default: all 12 + LOCUS),
* ``run <file.s> [--stats] [--trace out.json] [--timeseries out.json]``
  — assemble and run a program on one simulated tile; ``--stats``
  prints the cycle attribution (and verifies it sums exactly),
  ``--trace`` writes a Chrome trace-event file (``chrome://tracing`` /
  Perfetto; a ``.gz`` suffix gzips it), ``--timeseries`` samples
  interval counters (``--interval`` cycles each) into a JSON/CSV file,
* ``app <APP1..APP4> [--stats] [--trace out.json] [--timeseries ...]``
  — evaluate one application across the four architectures (Figure 12
  row); with ``--stats``/``--trace``/``--timeseries`` the Stitch plan
  is additionally co-simulated on all 16 tiles with telemetry on,
* ``profile <kernel|APP1..APP4> [--json|--folded|--annotate]`` — the
  cycle-attribution profiler: retired-cycle histograms per PC folded
  onto basic blocks and natural loops; totals reconcile exactly with
  the simulator's attribution (rules V900/V901 gate the output),
* ``monitor <kernel|APP1..APP4|capture.json>`` — ASCII link-utilization
  heatmap + per-tile stall timeline from a time-series capture (live
  run or a saved ``--timeseries`` file),
* ``verify <kernel|APP1..APP4|file.s>`` — static verification
  (stitch-lint) of a kernel, application or raw assembly file; with
  ``--strict`` the exit code reflects the findings,
* ``explain <kernel|APP1..APP4>`` — compile (or stitch) with decision
  provenance on and narrate every choice the tool chain made: each ISE
  candidate's fate, each version's measured cycles and bit-exact
  verdict, each placement alternative Algorithm 1 weighed; ``--json``
  for the machine form, ``--dot PREFIX`` for Graphviz pictures,
* ``bench [--out DIR] [--check DIR] [--workers N]`` — re-measure the
  Fig. 11/12 result sets into ``BENCH_fig11.json``/``BENCH_fig12.json``
  and optionally diff them against a committed baseline (CI's
  regression gate); ``--workers`` fans kernels/apps over processes,
* ``sweep [--study NAME] [--smoke] [--workers N] [--out FILE]`` — run a
  design-space study (mesh size / DRAM latency / D$ capacity, or a
  custom platform JSON via ``--config``) over a process pool;
  ``--check-serial`` re-runs serially and asserts identical JSON,
* ``chaos [targets ...] [--seed N] [--campaign N] [--plan FILE]`` —
  seeded fault-injection campaigns over kernels and APP1-4: every
  perturbed run is classified against its clean golden run as masked /
  detected_recovered / detected_failed / sdc, the report is gated by
  rules V1100-V1103, ``--workers`` fans points over processes
  (byte-identical to serial), ``--json FILE`` saves the report, and
  ``--strict`` additionally fails on any silent data corruption,
* ``report [path]`` — regenerate the full EXPERIMENTS.md (slow).
"""

import argparse
import os
import sys


def cmd_kernels(_args):
    from repro.compiler.profiler import profile_kernel
    from repro.workloads import KERNEL_FACTORIES, make_kernel

    print(f"{'kernel':12s} {'instructions':>12s} {'cycles':>10s}  description")
    for name in sorted(KERNEL_FACTORIES):
        kernel = make_kernel(name)
        profile = profile_kernel(kernel.program, kernel.setup)
        doc = (type(kernel).__module__.split(".")[-1])
        print(f"{name:12s} {profile.instructions:12d} {profile.cycles:10d}  {doc}")


def cmd_compile(args):
    from repro.compiler.driver import (
        ALL_OPTIONS,
        KernelCompiler,
        LOCUS_OPTION,
    )
    from repro.workloads import make_kernel

    kernel = make_kernel(args.kernel, seed=args.seed)
    compiler = KernelCompiler(kernel, allow_replication=not args.no_replication)
    options = ALL_OPTIONS + (LOCUS_OPTION,)
    if args.option:
        options = tuple(o for o in options if o.name == args.option)
        if not options:
            sys.exit(f"unknown option {args.option!r}")
    print(f"{args.kernel}: baseline {compiler.baseline_cycles} cycles")
    for option in options:
        compiled = compiler.compile(option)
        extras = []
        if compiled.uses_fusion:
            extras.append("fused")
        if compiled.replicated_regions:
            extras.append(
                "replicates " + ",".join(r.name for r in compiled.replicated_regions)
            )
        tag = f" ({'; '.join(extras)})" if extras else ""
        print(
            f"  {option.name:14s} {compiled.cycles:8d} cycles  "
            f"{compiled.speedup:5.2f}x  {len(compiled.mappings)} cix{tag}"
        )


def cmd_run(args):
    from repro.cpu import Core
    from repro.isa import AssemblerError, assemble
    from repro.mem import MemorySystem
    from repro.telemetry import ATTRIBUTION_BUCKETS, Telemetry, TimeSeries

    with open(args.file) as handle:
        try:
            program = assemble(handle.read(), name=args.file)
        except AssemblerError as exc:
            sys.exit(str(exc))
    timeseries = TimeSeries(interval=args.interval) if args.timeseries else None
    telemetry = (
        Telemetry(timeseries=timeseries)
        if (args.stats or args.trace or timeseries is not None)
        else None
    )
    core = Core(
        program, MemorySystem.stitch(), profile=True,
        tracer=telemetry.tracer if telemetry is not None else None,
        timeseries=timeseries,
    )
    outcome = core.run(max_instructions=args.max_instructions)
    print(f"stopped: {outcome.reason}")
    print(f"cycles: {core.cycles}  instructions: {core.instret}")
    live = {f"r{i}": v for i, v in enumerate(core.regs) if v}
    print(f"registers: {live}")
    if args.stats:
        from repro.verify import check_core

        attribution = core.attribution()
        print("cycle attribution (every cycle in exactly one bucket):")
        for bucket in ATTRIBUTION_BUCKETS:
            share = attribution[bucket] / core.cycles if core.cycles else 0.0
            print(f"  {bucket:13s} {attribution[bucket]:10d}  ({share:.1%})")
        for level, counts in core.memory.stats().items():
            print(
                f"{level}: {counts['hits']} hits / {counts['misses']} misses "
                f"({counts['hit_rate']:.1%} hit rate)"
            )
        print(check_core(core).render())
    if args.trace:
        telemetry.tracer.write_chrome(args.trace)
        print(
            f"chrome trace written to {args.trace} "
            f"({len(telemetry.tracer)} events)"
        )
    if timeseries is not None:
        from repro.power.chip import EnergyModel

        core.flush_timeseries()
        timeseries.add_energy(EnergyModel())
        timeseries.write(args.timeseries)
        print(
            f"time series written to {args.timeseries} "
            f"({len(timeseries)} samples, interval {timeseries.interval})"
        )


def cmd_app(args):
    from repro.sim.baselines import ARCHITECTURES, ARCH_STITCH, AppEvaluator
    from repro.workloads.apps import APP_FACTORIES

    factory = APP_FACTORIES.get(args.app.upper())
    if factory is None:
        sys.exit(f"unknown app {args.app!r}; choose from {sorted(APP_FACTORIES)}")
    evaluator = AppEvaluator(factory(seed=args.seed))
    print(f"evaluating {evaluator.app.name} (compiles every kernel option)...")
    throughputs = evaluator.normalized_throughputs()
    for arch in ARCHITECTURES:
        print(f"  {arch:18s} {throughputs[arch]:.2f}x")
    plan = evaluator.plan(ARCH_STITCH)
    print(plan.describe())
    if args.stats or args.trace or args.timeseries:
        from repro.telemetry import Telemetry, TimeSeries
        from repro.verify import check_run

        timeseries = (
            TimeSeries(interval=args.interval) if args.timeseries else None
        )
        telemetry = Telemetry(timeseries=timeseries)
        system, _ = evaluator.build_system(
            ARCH_STITCH, items=args.items, telemetry=telemetry
        )
        results = system.run()  # flushes sampling + derives energy
        print(f"co-simulated {evaluator.app.name} on {ARCH_STITCH}: "
              f"makespan {system.makespan(results)} cycles")
        if args.stats:
            print(results.stats.render())
            print(check_run(results).render())
        if args.trace:
            telemetry.tracer.write_chrome(args.trace)
            print(
                f"chrome trace written to {args.trace} "
                f"({len(telemetry.tracer)} events)"
            )
        if timeseries is not None:
            timeseries.write(args.timeseries)
            print(
                f"time series written to {args.timeseries} "
                f"({len(timeseries)} samples, interval {timeseries.interval})"
            )


def cmd_profile(args):
    import json

    from repro.profile import (
        profile_app_cycles,
        profile_kernel_cycles,
        render_annotated,
        render_folded,
        render_summary,
    )
    from repro.verify import check_profile, check_profile_run
    from repro.workloads import KERNEL_FACTORIES
    from repro.workloads.apps import APP_FACTORIES

    target = args.target
    if target in KERNEL_FACTORIES:
        profile, core = profile_kernel_cycles(target, seed=args.seed)
        profiles = {core.core_id: profile}
        report = check_profile(profile, total_cycles=core.cycles)
    elif target.upper() in APP_FACTORIES:
        profiles, results = profile_app_cycles(
            target, seed=args.seed, items=args.items
        )
        report = check_profile_run(profiles, results)
    else:
        sys.exit(
            f"unknown profile target {target!r}: not a kernel "
            f"({sorted(KERNEL_FACTORIES)}) or app ({sorted(APP_FACTORIES)})"
        )

    ordered = [profiles[tile] for tile in sorted(profiles)]
    if args.json:
        payload = {
            "target": target,
            "reconciled": all(p.reconciles() for p in ordered),
            "tiles": {str(p.tile): p.to_dict() for p in ordered},
            "diagnostics": report.to_dict(),
        }
        print(json.dumps(payload, indent=2))
    elif args.folded:
        for profile in ordered:
            print(render_folded(profile))
    elif args.annotate:
        for profile in ordered:
            print(render_annotated(profile))
    else:
        for profile in ordered:
            print(render_summary(profile))
        print(report.render())
    if report.errors():
        sys.exit(1)


def cmd_monitor(args):
    import json

    from repro.telemetry.monitor import render_monitor
    from repro.verify import check_timeseries

    target = args.target
    if os.path.isfile(target):
        from repro.telemetry.trace import _open_trace

        with _open_trace(target, "r") as handle:
            payload = json.load(handle)
    else:
        payload = _capture_timeseries(target, args)
    report = check_timeseries(payload)
    print(render_monitor(payload, width=args.width))
    if not report.ok():
        print(report.render())
        sys.exit(1)


def cmd_critpath(args):
    import json

    from repro.critpath import (
        WhatIfError,
        WhatIfInfeasible,
        render_gantt,
        render_summary,
    )
    from repro.critpath.runner import record_target, validate_whatif
    from repro.verify import check_critpath

    platform = _load_platform(args.platform) if args.platform else None
    try:
        run = record_target(args.target, seed=args.seed, items=args.items,
                            platform=platform)
    except KeyError as exc:
        sys.exit(str(exc.args[0]) if exc.args else str(exc))
    report = check_critpath(run.graph, run.analysis, measured=run.measured)

    projections = []
    validation = None
    try:
        if args.what_if:
            projections.append(run.project(args.what_if))
        if args.validate:
            validation = validate_whatif(run, args.validate,
                                         seed=args.seed, items=args.items)
    except (WhatIfError, WhatIfInfeasible) as exc:
        sys.exit(f"what-if failed: {exc}")

    if args.out:
        payload = run.to_dict()
        payload["diagnostics"] = report.to_dict()
        if projections:
            payload["what_if"] = projections
        if validation is not None:
            payload["validation"] = validation
        with open(args.out, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.out}", file=sys.stderr)

    if args.json:
        payload = run.to_dict()
        payload["diagnostics"] = report.to_dict()
        if projections:
            payload["what_if"] = projections
        if validation is not None:
            payload["validation"] = validation
        print(json.dumps(payload, indent=2))
    else:
        if args.gantt:
            print(render_gantt(run.graph, run.analysis, width=args.width))
            print()
        print(render_summary(run.graph, run.analysis))
        if run.partial:
            print(f"note: partial run ({run.error})")
        for projection in projections:
            print(f"what-if {projection['expressions']}: "
                  f"{projection['baseline_cycles']} -> "
                  f"{projection['projected_cycles']} cycles "
                  f"(speedup {projection['speedup']})")
        if validation is not None:
            print(f"validated {validation['expressions']}: projected "
                  f"{validation['projected_cycles']} vs actual re-run "
                  f"{validation['actual_cycles']} "
                  f"(drift {validation['drift']:+.4%})")
        if not report.ok():
            print(report.render())
    if report.errors():
        sys.exit(1)


def _capture_timeseries(target, args):
    """Run a kernel or app with interval sampling on; returns the payload."""
    from repro.power.chip import EnergyModel
    from repro.telemetry import Telemetry, TimeSeries
    from repro.workloads import KERNEL_FACTORIES, make_kernel
    from repro.workloads.apps import APP_FACTORIES

    timeseries = TimeSeries(interval=args.interval)
    if target in KERNEL_FACTORIES:
        from repro.cpu import Core
        from repro.mem import MemorySystem

        kernel = make_kernel(target, seed=args.seed)
        core = Core(
            kernel.program, MemorySystem.stitch(), timeseries=timeseries
        )
        kernel.setup(core)
        core.run(max_instructions=5_000_000)
        core.flush_timeseries()
        timeseries.add_energy(EnergyModel())
    elif target.upper() in APP_FACTORIES:
        from repro.sim.baselines import ARCH_STITCH, AppEvaluator

        evaluator = AppEvaluator(APP_FACTORIES[target.upper()](seed=args.seed))
        system, _ = evaluator.build_system(
            ARCH_STITCH, items=args.items,
            telemetry=Telemetry(timeseries=timeseries),
        )
        system.run()  # flushes sampling + derives energy
    else:
        sys.exit(
            f"unknown monitor target {target!r}: not a kernel "
            f"({sorted(KERNEL_FACTORIES)}), app ({sorted(APP_FACTORIES)}) "
            f"or existing capture file"
        )
    return timeseries.to_dict()


def _verify_exit_code(report, strict):
    """Severity-aware exit status of ``repro verify``.

    0 — clean (or warnings only, outside strict mode);
    1 — error-severity diagnostics, strict or not;
    2 — strict mode and the report is not completely clean.
    """
    if report.errors():
        return 1
    if strict and not report.ok(strict=True):
        return 2
    return 0


def _dump_cfg(prefix, program):
    """Write ``<prefix>.cfg.dot``: the analyzed CFG of ``program``."""
    from repro.verify.absint import analyze_program, cfg_dot

    analysis = analyze_program(program)
    if analysis is None:
        sys.exit(f"cannot build a CFG for {program.name} "
                 f"(empty program or broken branch targets)")
    path = f"{prefix}.cfg.dot"
    with open(path, "w") as handle:
        handle.write(cfg_dot(analysis))
    # stderr keeps --json stdout machine-readable
    print(f"wrote {path}", file=sys.stderr)


def cmd_verify(args):
    import json

    from repro.verify import RULES, verify_app, verify_kernel, verify_source

    deep = args.deep or args.strict

    if args.rules:
        print(f"{'code':6s} {'severity':8s} {'pass':12s} summary")
        for code in sorted(RULES):
            rule = RULES[code]
            print(f"{rule.code:6s} {str(rule.severity):8s} "
                  f"{rule.pass_name:12s} {rule.summary}")
        return

    if args.platform:
        report = _verify_platform(args.platform)
        if args.json:
            print(json.dumps(report.to_dict(), indent=2))
        else:
            print(report.render())
        code = _verify_exit_code(report, args.strict)
        if code:
            sys.exit(code)
        return

    if args.target is None:
        sys.exit("verify needs a kernel name, app name or .s file")

    from repro.workloads import KERNEL_FACTORIES, make_kernel
    from repro.workloads.apps import APP_FACTORIES

    target = args.target
    program = None  # the --dump-cfg subject, when the target has one
    if target in KERNEL_FACTORIES:
        kernel = make_kernel(target, seed=args.seed)
        report = verify_kernel(
            kernel, compile_options=not args.no_compile, deep=deep
        )
        program = kernel.program
    elif target.upper() in APP_FACTORIES:
        app = APP_FACTORIES[target.upper()](seed=args.seed)
        report = verify_app(app, deep=deep)
    elif os.path.isfile(target):
        with open(target) as handle:
            source = handle.read()
        report = verify_source(source, name=target, deep=deep)
        from repro.isa.assembler import AssemblerError, assemble

        try:
            program = assemble(source, name=target)
        except AssemblerError:
            program = None  # already reported as V100
    else:
        sys.exit(
            f"unknown verify target {target!r}: not a kernel "
            f"({sorted(KERNEL_FACTORIES)}), app ({sorted(APP_FACTORIES)}) "
            f"or existing file"
        )

    if args.dump_cfg:
        if program is None:
            sys.exit(f"--dump-cfg needs a kernel or .s target, "
                     f"not {target!r}")
        _dump_cfg(args.dump_cfg, program)

    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
    code = _verify_exit_code(report, args.strict)
    if code:
        sys.exit(code)


def _load_platform(spec):
    """Resolve ``spec`` (preset name or JSON file) to a PlatformConfig.

    Validation is deferred to the caller — the verify command wants to
    *report* inconsistencies, not crash on them.
    """
    import json

    from repro.platform import PRESET_NAMES, PlatformConfig, get_preset

    if spec in PRESET_NAMES:
        return get_preset(spec)
    if os.path.isfile(spec):
        with open(spec) as handle:
            return PlatformConfig.from_dict(json.load(handle), validate=False)
    sys.exit(
        f"unknown platform {spec!r}: not a preset ({list(PRESET_NAMES)}) "
        f"or an existing JSON file"
    )


def _verify_platform(spec):
    from repro.platform import PlatformConfigError
    from repro.verify import Report, check_platform

    try:
        config = _load_platform(spec)
    except PlatformConfigError as exc:
        # Structurally broken (unknown fields/groups): report the
        # issues instead of tracebacking.
        report = Report(spec)
        for code, loc, message in exc.issues:
            report.emit(code, loc, message)
        return report
    print(config.describe())
    return check_platform(config)


def _explain_kernel(name, args):
    import json

    from repro.compiler.driver import (
        ALL_OPTIONS,
        KernelCompiler,
        LOCUS_OPTION,
    )
    from repro.provenance import CompileReport, dfg_dot
    from repro.verify import check_compile_report
    from repro.workloads import make_kernel

    kernel = make_kernel(name, seed=args.seed)
    report = CompileReport(name)
    compiler = KernelCompiler(kernel, allow_replication=True, report=report)
    options = ALL_OPTIONS + (LOCUS_OPTION,)
    if args.option:
        options = tuple(o for o in options if o.name == args.option)
        if not options:
            sys.exit(f"unknown option {args.option!r}")
    compiled = compiler.compile_options(options)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        from repro.provenance import render_compile_report

        print(render_compile_report(report, verbose=args.verbose))
        print(check_compile_report(report).render())
    if args.dot:
        best = max(compiled.values(), key=lambda c: c.speedup)
        path = f"{args.dot}.dfg.dot"
        with open(path, "w") as handle:
            handle.write(dfg_dot(best))
        print(f"DFG written to {path} ({best.option.name})")
    if not report.accounted():
        sys.exit("provenance accounting failed: candidates unaccounted for")


def _explain_app(name, args):
    import json

    from repro.core.placement import DEFAULT_PLACEMENT
    from repro.provenance import StitchTrace, plan_dot
    from repro.sim.baselines import ARCH_STITCH, AppEvaluator
    from repro.workloads.apps import APP_FACTORIES

    evaluator = AppEvaluator(APP_FACTORIES[name](seed=args.seed))
    trace = StitchTrace(name)
    plan = evaluator.plan(ARCH_STITCH, trace=trace)
    if args.json:
        payload = trace.to_dict()
        payload["plan"] = {
            "bottleneck_cycles": plan.bottleneck_cycles(),
            "assignments": {
                str(sid): {
                    "tile": a.tile,
                    "option": a.option,
                    "remote_tile": a.remote_tile,
                    "path": a.path,
                    "cycles": a.cycles,
                }
                for sid, a in plan.assignments.items()
            },
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(trace.render(plan=plan))
    if args.dot:
        path = f"{args.dot}.plan.dot"
        with open(path, "w") as handle:
            handle.write(plan_dot(plan, DEFAULT_PLACEMENT))
        print(f"mesh plan written to {path}")


def cmd_explain(args):
    from repro.workloads import KERNEL_FACTORIES
    from repro.workloads.apps import APP_FACTORIES

    target = args.target
    if target in KERNEL_FACTORIES:
        _explain_kernel(target, args)
    elif target.upper() in APP_FACTORIES:
        _explain_app(target.upper(), args)
    else:
        sys.exit(
            f"unknown explain target {target!r}: not a kernel "
            f"({sorted(KERNEL_FACTORIES)}) or app ({sorted(APP_FACTORIES)})"
        )


def cmd_bench(args):
    from repro.analysis.bench import (
        bench_fig11,
        bench_fig12,
        compare_bench,
        load_bench,
        write_bench,
    )

    os.makedirs(args.out, exist_ok=True)
    kernels = args.kernels.split(",") if args.kernels else None
    apps = [a.upper() for a in args.apps.split(",")] if args.apps else None
    payloads = {}
    if not args.skip_fig11:
        print("bench fig11 (compiles every kernel x option)...")
        payloads["BENCH_fig11.json"] = bench_fig11(
            kernels, seed=args.seed, workers=args.workers
        )
    if not args.skip_fig12:
        print("bench fig12 (stitches every app)...")
        payloads["BENCH_fig12.json"] = bench_fig12(
            apps, seed=args.seed, workers=args.workers
        )
    if args.host:
        from repro.analysis.hostbench import bench_host, render_host

        print("bench host (simulated-instr/s, reference vs fast engine)...")
        payloads["BENCH_host.json"] = bench_host(seed=args.seed)
        print(render_host(payloads["BENCH_host.json"]))
    for filename, payload in payloads.items():
        path = os.path.join(args.out, filename)
        write_bench(payload, path)
        print(f"wrote {path}")
    if not args.check:
        return
    failed = False
    for filename, payload in payloads.items():
        baseline_path = os.path.join(args.check, filename)
        if not os.path.isfile(baseline_path):
            print(f"{filename}: no baseline at {baseline_path}, skipping")
            continue
        if filename == "BENCH_host.json":
            from repro.analysis.hostbench import compare_host

            regressions, notes = compare_host(
                payload, load_bench(baseline_path)
            )
        else:
            regressions, notes = compare_bench(
                payload, load_bench(baseline_path), tolerance=args.tolerance
            )
        for note in notes:
            print(f"{filename}: note: {note}")
        for regression in regressions:
            print(f"{filename}: REGRESSION: {regression}")
        if regressions:
            failed = True
        else:
            print(f"{filename}: within {args.tolerance:.0%} of baseline")
    if failed:
        sys.exit(1)


def cmd_sweep(args):
    from repro.sweep import make_points, run_sweep, smoke_points, sweep_to_json
    from repro.sweep.studies import STUDY_KERNELS

    if args.smoke:
        points = smoke_points()
    elif args.config:
        config = _load_platform(args.config)
        config.validate()
        print(config.describe())
        points = [
            {
                "id": f"{config.name}/{kernel}",
                "config": config.to_dict(),
                "workload": {"kind": "kernel", "name": kernel,
                             "seed": args.seed},
            }
            for kernel in STUDY_KERNELS
        ]
    else:
        studies = args.study.split(",") if args.study else None
        try:
            points = make_points(studies)
        except KeyError as exc:
            sys.exit(str(exc.args[0]))
    if args.telemetry:
        for point in points:
            point["workload"]["telemetry"] = True
    workers = args.workers
    print(f"sweep: {len(points)} point(s), "
          f"{'serial' if not workers or workers <= 1 else f'{workers} workers'}")
    payload = run_sweep(points, workers=workers)
    if args.check_serial and workers and workers > 1:
        serial = run_sweep(points, workers=1)
        if sweep_to_json(serial) != sweep_to_json(payload):
            sys.exit("sweep: parallel and serial runs disagree")
        print("sweep: parallel == serial (checked)")
    rendered = sweep_to_json(payload)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(rendered)
        print(f"wrote {args.out}")
    for record in payload["results"]:
        if "error" in record:
            print(f"  {record['id']}: ERROR {record['error']}")
        else:
            metrics = record["metrics"]
            line = ", ".join(f"{k}={v}" for k, v in metrics.items())
            print(f"  {record['id']}: {line}")
    if payload["errors"]:
        sys.exit(f"sweep: {payload['errors']} point(s) failed")


def cmd_chaos(args):
    import json

    from repro.chaos.campaign import (
        campaign_points,
        campaign_report,
        campaign_to_json,
    )
    from repro.platform import DEFAULT_PLATFORM
    from repro.sweep.runner import run_sweep
    from repro.verify import check_campaign

    targets = args.targets or ["fir", "fft", "2dconv", "APP1"]
    recovery = "none" if args.no_recovery else "full"
    sites = args.sites.split(",") if args.sites else None
    if args.plan:
        with open(args.plan) as handle:
            plan_dict = json.load(handle)
        config_dict = DEFAULT_PLATFORM.to_dict()
        points = [
            {
                "id": f"{target}/plan",
                "config": config_dict,
                "workload": {"kind": "chaos", "target": target,
                             "plan": plan_dict},
            }
            for target in targets
        ]
    else:
        points = campaign_points(targets, args.campaign, args.seed,
                                 recovery=recovery, sites=sites)
    workers = args.workers
    print(f"chaos: {len(points)} point(s) over {', '.join(targets)}, "
          f"recovery {recovery}, "
          f"{'serial' if not workers or workers <= 1 else f'{workers} workers'}")

    def build_report(fanout):
        return campaign_report(run_sweep(points, workers=fanout),
                               targets=targets, seed=args.seed,
                               recovery=recovery)

    report = build_report(workers)
    if args.check_serial and workers and workers > 1:
        if campaign_to_json(build_report(1)) != campaign_to_json(report):
            sys.exit("chaos: parallel and serial campaigns disagree")
        print("chaos: parallel == serial (checked)")
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(campaign_to_json(report))
        print(f"wrote {args.json}")
    for record in report["results"]:
        if "error" in record:
            print(f"  {record['id']}: ERROR {record['error']}")
            continue
        metrics = record["metrics"]
        extra = ""
        if metrics.get("loud"):
            extra = f" [{metrics['loud'].split(':')[0]}]"
        if metrics.get("remapped"):
            extra += f" [remapped around {metrics['remapped']['excluded']}]"
        print(f"  {record['id']}: {metrics['outcome']}"
              f" (triggered {metrics['faults_triggered']},"
              f" recovery {metrics['recovery_cycles']} cy){extra}")
    tally = report["campaign"]["outcomes"]
    print("chaos: " + ", ".join(f"{name}={tally[name]}" for name in tally))
    verdict = check_campaign(report)
    print(verdict.render())
    if report["errors"]:
        sys.exit(f"chaos: {report['errors']} point(s) failed")
    if not verdict.ok():
        sys.exit(1)
    if args.strict and report["campaign"]["sdc"]:
        sys.exit(f"chaos: {report['campaign']['sdc']} silent data "
                 f"corruption(s)")


def cmd_report(args):
    from repro.analysis.report import generate

    generate(args.path)


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro", description="Stitch (ISCA 2018) reproduction tools"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("kernels", help="list the kernel suite")

    p_compile = sub.add_parser("compile", help="compile one kernel")
    p_compile.add_argument("kernel")
    p_compile.add_argument("--option", help="single patch option name")
    p_compile.add_argument("--seed", type=int, default=1)
    p_compile.add_argument("--no-replication", action="store_true")

    p_run = sub.add_parser("run", help="run an assembly file on one tile")
    p_run.add_argument("file")
    p_run.add_argument("--max-instructions", type=int, default=10_000_000)
    p_run.add_argument(
        "--stats", action="store_true",
        help="print cycle attribution + cache stats (and verify them)",
    )
    p_run.add_argument(
        "--trace", metavar="PATH",
        help="write a Chrome trace-event JSON file of the run "
             "(gzipped when PATH ends in .gz)",
    )
    p_run.add_argument(
        "--timeseries", metavar="PATH",
        help="sample interval counters into PATH (.csv for CSV, else JSON)",
    )
    p_run.add_argument(
        "--interval", type=int, default=1024,
        help="sampling interval in cycles (default 1024)",
    )

    p_app = sub.add_parser("app", help="evaluate an application")
    p_app.add_argument("app", help="APP1 | APP2 | APP3 | APP4")
    p_app.add_argument("--seed", type=int, default=1)
    p_app.add_argument(
        "--stats", action="store_true",
        help="co-simulate the Stitch plan with telemetry and print the roll-up",
    )
    p_app.add_argument(
        "--trace", metavar="PATH",
        help="co-simulate and write a Chrome trace-event JSON file "
             "(gzipped when PATH ends in .gz)",
    )
    p_app.add_argument(
        "--timeseries", metavar="PATH",
        help="co-simulate and sample interval counters into PATH "
             "(.csv for CSV, else JSON)",
    )
    p_app.add_argument(
        "--interval", type=int, default=1024,
        help="sampling interval in cycles (default 1024)",
    )
    p_app.add_argument(
        "--items", type=int, default=2,
        help="items to stream through the telemetry co-simulation",
    )

    p_profile = sub.add_parser(
        "profile", help="cycle-attribution profiler (PC/block/loop)"
    )
    p_profile.add_argument(
        "target", help="kernel name | APP1..APP4",
    )
    p_profile.add_argument(
        "--json", action="store_true",
        help="machine-readable profile (per-PC, per-block, per-loop)",
    )
    p_profile.add_argument(
        "--folded", action="store_true",
        help="flamegraph folded stacks (prog;loop;block cycles)",
    )
    p_profile.add_argument(
        "--annotate", action="store_true",
        help="annotated disassembly with per-instruction cycles",
    )
    p_profile.add_argument("--seed", type=int, default=1)
    p_profile.add_argument(
        "--items", type=int, default=2,
        help="app targets: items to stream through the co-simulation",
    )

    p_monitor = sub.add_parser(
        "monitor", help="ASCII heatmap/timeline from a time-series capture"
    )
    p_monitor.add_argument(
        "target", help="kernel name | APP1..APP4 | saved --timeseries JSON",
    )
    p_monitor.add_argument(
        "--interval", type=int, default=1024,
        help="sampling interval in cycles for live captures (default 1024)",
    )
    p_monitor.add_argument(
        "--width", type=int, default=64,
        help="maximum columns in the rendered timeline (default 64)",
    )
    p_monitor.add_argument("--seed", type=int, default=1)
    p_monitor.add_argument(
        "--items", type=int, default=2,
        help="app targets: items to stream through the co-simulation",
    )

    p_critpath = sub.add_parser(
        "critpath",
        help="causal critical-path analysis and what-if projections",
    )
    p_critpath.add_argument(
        "target", help="kernel name | APP1..APP4",
    )
    p_critpath.add_argument(
        "--json", action="store_true",
        help="machine-readable capture (graph + analysis + diagnostics)",
    )
    p_critpath.add_argument(
        "--gantt", action="store_true",
        help="ASCII Gantt chart with the critical path highlighted",
    )
    p_critpath.add_argument(
        "--what-if", action="append", default=[], metavar="EXPR",
        help="replay with scaled weights, e.g. 'tile3.compute*0.5', "
             "'dram_latency*2', 'link_latency*2', 'channel_capacity=64' "
             "(repeatable; clauses compose)",
    )
    p_critpath.add_argument(
        "--validate", action="append", default=[], metavar="EXPR",
        help="project a dram_latency what-if AND re-run the simulator "
             "with the equivalent platform change; reports the drift",
    )
    p_critpath.add_argument(
        "--out", metavar="FILE",
        help="also write the JSON capture here (for CI artifacts / sweep)",
    )
    p_critpath.add_argument(
        "--platform", metavar="PRESET|FILE",
        help="record on a platform preset or config JSON",
    )
    p_critpath.add_argument(
        "--width", type=int, default=72,
        help="columns in the --gantt chart (default 72)",
    )
    p_critpath.add_argument("--seed", type=int, default=1)
    p_critpath.add_argument(
        "--items", type=int, default=2,
        help="app targets: items to stream through the co-simulation",
    )

    p_verify = sub.add_parser(
        "verify", help="statically verify a kernel, app or assembly file"
    )
    p_verify.add_argument(
        "target", nargs="?",
        help="kernel name | APP1..APP4 | path to a .s file",
    )
    p_verify.add_argument(
        "--strict", action="store_true",
        help="exit non-zero unless the report is completely clean "
             "(implies --deep; exit 2 distinguishes warnings-only)",
    )
    p_verify.add_argument(
        "--deep", action="store_true",
        help="also run the abstract interpreter (V800 rule family: "
             "init-before-use, SPM bounds, 19-bit control words, ...)",
    )
    p_verify.add_argument(
        "--dump-cfg", metavar="PREFIX",
        help="write PREFIX.cfg.dot: the target's CFG annotated with "
             "per-block interval states (kernel or .s targets)",
    )
    p_verify.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    p_verify.add_argument(
        "--no-compile", action="store_true",
        help="kernel targets: program lint only, skip option compilation",
    )
    p_verify.add_argument("--seed", type=int, default=1)
    p_verify.add_argument(
        "--rules", action="store_true", help="list registered rules and exit"
    )
    p_verify.add_argument(
        "--platform", metavar="PRESET|FILE",
        help="verify a platform config (preset name or JSON file) "
             "against the V700 rule family",
    )

    p_explain = sub.add_parser(
        "explain", help="narrate the tool chain's decisions with provenance"
    )
    p_explain.add_argument(
        "target", help="kernel name | APP1..APP4",
    )
    p_explain.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    p_explain.add_argument(
        "--dot", metavar="PREFIX",
        help="write Graphviz files (PREFIX.dfg.dot / PREFIX.plan.dot)",
    )
    p_explain.add_argument(
        "--option", help="kernel targets: explain a single patch option"
    )
    p_explain.add_argument(
        "--verbose", action="store_true",
        help="list every rejected candidate, not just the tallies",
    )
    p_explain.add_argument("--seed", type=int, default=1)

    p_bench = sub.add_parser(
        "bench", help="re-measure Fig. 11/12 into BENCH_*.json"
    )
    p_bench.add_argument(
        "--out", default=".", help="directory for the BENCH_*.json files"
    )
    p_bench.add_argument(
        "--check", metavar="DIR",
        help="compare against baseline BENCH_*.json in DIR; exit 1 on "
             "regression",
    )
    p_bench.add_argument(
        "--tolerance", type=float, default=0.03,
        help="relative drift allowed on simulated metrics (default 3%%)",
    )
    p_bench.add_argument(
        "--kernels", help="comma-separated subset for fig11"
    )
    p_bench.add_argument(
        "--apps", help="comma-separated subset for fig12"
    )
    p_bench.add_argument("--skip-fig11", action="store_true")
    p_bench.add_argument("--skip-fig12", action="store_true")
    p_bench.add_argument(
        "--host", action="store_true",
        help="also measure host-side simulated-instr/s (reference vs "
             "fast engine) into BENCH_host.json",
    )
    p_bench.add_argument("--seed", type=int, default=1)
    p_bench.add_argument(
        "--workers", type=int,
        help="fan kernels/apps over N worker processes (default: serial)",
    )

    p_sweep = sub.add_parser(
        "sweep", help="run a design-space study over a process pool"
    )
    p_sweep.add_argument(
        "--study",
        help="comma-separated studies to run (mesh | dram | dcache; "
             "default: all)",
    )
    p_sweep.add_argument(
        "--smoke", action="store_true",
        help="the tiny CI sweep: 2 configs x 2 kernels",
    )
    p_sweep.add_argument(
        "--config", metavar="PRESET|FILE",
        help="sweep the study kernels on one platform (preset name or "
             "config JSON) instead of a built-in study",
    )
    p_sweep.add_argument(
        "--workers", type=int,
        help="worker processes (default: serial)",
    )
    p_sweep.add_argument(
        "--out", metavar="FILE", help="write the sweep JSON here"
    )
    p_sweep.add_argument(
        "--check-serial", action="store_true",
        help="re-run serially and assert byte-identical results",
    )
    p_sweep.add_argument(
        "--telemetry", action="store_true",
        help="capture per-point stats and merge them (submission order) "
             "into the payload's stats_total",
    )
    p_sweep.add_argument("--seed", type=int, default=1)

    p_chaos = sub.add_parser(
        "chaos", help="run a seeded fault-injection campaign"
    )
    p_chaos.add_argument(
        "targets", nargs="*",
        help="kernels and/or APP1..APP4 (default: fir fft 2dconv APP1)",
    )
    p_chaos.add_argument("--seed", type=int, default=1)
    p_chaos.add_argument(
        "--campaign", type=int, default=16, metavar="N",
        help="number of single-fault points (default: 16)",
    )
    p_chaos.add_argument(
        "--plan", metavar="FILE",
        help="run one explicit InjectionPlan JSON per target instead of "
             "a seeded campaign",
    )
    p_chaos.add_argument(
        "--sites", metavar="A,B,...",
        help="restrict drawn faults to these sites "
             "(reg,spm,dram,freeze,cix,link,channel)",
    )
    p_chaos.add_argument(
        "--no-recovery", action="store_true",
        help="disarm every detection/recovery policy (faults land raw)",
    )
    p_chaos.add_argument(
        "--workers", type=int,
        help="worker processes (default: serial)",
    )
    p_chaos.add_argument(
        "--json", metavar="FILE", help="write the campaign report here"
    )
    p_chaos.add_argument(
        "--check-serial", action="store_true",
        help="re-run serially and assert byte-identical reports",
    )
    p_chaos.add_argument(
        "--strict", action="store_true",
        help="also fail on any silent data corruption",
    )

    p_report = sub.add_parser("report", help="regenerate EXPERIMENTS.md")
    p_report.add_argument("path", nargs="?", default="EXPERIMENTS.md")

    args = parser.parse_args(argv)
    handler = {
        "kernels": cmd_kernels,
        "compile": cmd_compile,
        "run": cmd_run,
        "app": cmd_app,
        "profile": cmd_profile,
        "monitor": cmd_monitor,
        "critpath": cmd_critpath,
        "verify": cmd_verify,
        "explain": cmd_explain,
        "bench": cmd_bench,
        "sweep": cmd_sweep,
        "chaos": cmd_chaos,
        "report": cmd_report,
    }[args.command]
    handler(args)


if __name__ == "__main__":
    main()
